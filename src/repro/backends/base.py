"""Backend contract: run configurations and result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro import calibration as cal
from repro.errors import ProfilingError
from repro.pipelines.base import SplitPlan
from repro.sim.storage import DeviceProfile, HDD_CEPH
from repro.sim.trace import ResourceTrace

#: Cache modes (paper Sec. 4.2).
CACHE_NONE = "none"            # page cache dropped between epochs
CACHE_SYSTEM = "system"        # page cache retained across epochs
CACHE_APPLICATION = "application"  # deserialized tensors cached in RAM

_CACHE_MODES = (CACHE_NONE, CACHE_SYSTEM, CACHE_APPLICATION)


@dataclass(frozen=True)
class Environment:
    """The hardware a run executes on (paper Sec. 3.3 by default)."""

    storage: DeviceProfile = HDD_CEPH
    cores: int = cal.CORES
    ram_bytes: float = cal.RAM_BYTES
    memory_bw: float = cal.MEMORY_BW
    memory_stream_bw: float = cal.MEMORY_STREAM_BW

    def renamed_storage(self, profile: DeviceProfile) -> "Environment":
        return Environment(storage=profile, cores=self.cores,
                           ram_bytes=self.ram_bytes,
                           memory_bw=self.memory_bw,
                           memory_stream_bw=self.memory_stream_bw)


@dataclass(frozen=True)
class RunConfig:
    """Knobs of one strategy execution (PRESTO Strategy parameters)."""

    threads: int = cal.DEFAULT_THREADS
    epochs: int = 1
    compression: Optional[str] = None      # None | "GZIP" | "ZLIB"
    cache_mode: str = CACHE_NONE
    shards: Optional[int] = None           # defaults to thread count
    shuffle_buffer: int = 0                # samples; 0 disables shuffling
    max_jobs: int = cal.MAX_JOBS_PER_RUN

    def __post_init__(self):
        if self.threads < 1:
            raise ProfilingError("need at least one thread")
        if self.epochs < 1:
            raise ProfilingError("need at least one epoch")
        if self.cache_mode not in _CACHE_MODES:
            raise ProfilingError(
                f"cache_mode must be one of {_CACHE_MODES}, "
                f"got {self.cache_mode!r}")
        if self.shuffle_buffer < 0:
            raise ProfilingError("shuffle buffer must be non-negative")

    @property
    def effective_shards(self) -> int:
        return self.shards if self.shards is not None else self.threads


@dataclass
class EpochResult:
    """Throughput and I/O counters of one training epoch."""

    epoch: int
    duration: float
    samples: int
    bytes_from_storage: float
    bytes_from_cache: float
    cache_hit_rate: float
    served_from_app_cache: bool = False
    #: Per-resource elapsed-time attribution (simulated backend only;
    #: backends that cannot measure it leave this None).
    trace: Optional[ResourceTrace] = None

    @property
    def throughput(self) -> float:
        """Samples per second -- the paper's T4."""
        return self.samples / self.duration if self.duration > 0 else 0.0

    @property
    def avg_read_bw(self) -> float:
        """Average network read speed (Table 4's right columns)."""
        return (self.bytes_from_storage / self.duration
                if self.duration > 0 else 0.0)


@dataclass
class OfflineResult:
    """Outcome of materialising the offline part of a strategy."""

    duration: float
    bytes_read: float
    bytes_written: float
    compression_seconds: float = 0.0


@dataclass
class StrategyRunResult:
    """Everything the profiler records about one strategy execution."""

    pipeline: str
    strategy: str
    config: RunConfig
    environment: Environment
    #: Storage consumption of the representation the training loop reads
    #: (compressed size if compression is on; the paper's Fig. 6 bars).
    storage_bytes: float
    offline: Optional[OfflineResult]
    epochs: list[EpochResult] = field(default_factory=list)
    #: Application-level caching needs the whole dataset in RAM; the
    #: paper's CV/NLP last strategies "failed to run" (Sec. 4.2 obs. 4).
    app_cache_failed: bool = False
    #: Kernel events the run's private simulation resolved (0 for
    #: backends that execute nothing simulated).  Deterministic, so the
    #: declarative API reports it as a machine-independent cost metric.
    events_processed: int = 0

    @property
    def throughput(self) -> float:
        """First-epoch (cold) throughput, the headline metric."""
        return self.epochs[0].throughput if self.epochs else 0.0

    @property
    def cached_throughput(self) -> float:
        """Last-epoch throughput (after caches warm up)."""
        return self.epochs[-1].throughput if self.epochs else 0.0

    @property
    def preprocessing_seconds(self) -> float:
        """Offline preprocessing time (0 for the unprocessed strategy)."""
        return self.offline.duration if self.offline else 0.0

    def epoch(self, index: int) -> EpochResult:
        return self.epochs[index]


class Backend(Protocol):
    """The contract every execution backend satisfies."""

    def run(self, plan: SplitPlan, config: RunConfig) -> StrategyRunResult:
        """Execute a strategy and return its metrics."""
        ...
