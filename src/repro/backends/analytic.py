"""Closed-form bottleneck estimator (operational analysis).

The DES backend *executes* a strategy; this model *estimates* it with
queueing-theory bounds, using the same calibrated constants.  PRESTO uses
it for cheap pre-screening of large strategy grids ("profile a low-cost
VM, extrapolate" -- paper Sec. 3.1) and the test-suite cross-validates it
against the DES.

Model (per strategy, first epoch, cold caches):

* each of T threads processes samples sequentially:
  ``t_thread = open + read + decompress + deserialize + native CPU``
  with the read rate at the max-min fair share ``min(stream, agg / T)``;
* serialized sections bound throughput from above:
  the dispatch lock (~110 us + convoy per sample) and the GIL
  (sum of external-step costs + convoy);
* the aggregate link bounds throughput at ``agg_bw / bytes_per_sample``;
* metadata slots bound file-per-sample sources at
  ``slots / open_latency`` opens per second.

Throughput is the minimum of the per-thread pipelining bound and the
serialized/shared-resource caps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import calibration as cal
from repro.backends.base import Environment, RunConfig
from repro.errors import ProfilingError
from repro.formats.compression import get_codec
from repro.pipelines.base import SplitPlan


@dataclass(frozen=True)
class StrategyEstimate:
    """Analytic throughput estimate with the per-resource bounds."""

    pipeline: str
    strategy: str
    throughput: float
    thread_bound: float
    dispatch_bound: float
    gil_bound: float
    link_bound: float
    metadata_bound: float
    storage_bytes: float
    offline_seconds: float

    @property
    def bottleneck(self) -> str:
        """Which resource binds (for "where is my bottleneck?" reports)."""
        bounds = {
            "threads(cpu+io)": self.thread_bound,
            "dispatch": self.dispatch_bound,
            "gil": self.gil_bound,
            "network-link": self.link_bound,
            "metadata": self.metadata_bound,
        }
        return min(bounds, key=bounds.get)


class AnalyticModel:
    """Closed-form strategy estimates sharing the DES calibration."""

    def __init__(self, environment: Optional[Environment] = None):
        self.environment = environment or Environment()

    def sample_time_components(self, plan: SplitPlan,
                               config: RunConfig) -> dict[str, float]:
        """Per-sample sequential time, broken down by phase.

        The keys (``open``, ``read``, ``decompress``, ``deserialize``,
        ``native_cpu``, ``external_cpu``, ``shuffle``, ``overhead``,
        ``dispatch``) name the model's own phases -- they are *not* the
        simulator's trace categories; ``_MODEL_CATEGORY`` in
        :mod:`repro.diagnosis.attribution` maps them onto attribution
        buckets.  The values sum -- in insertion order -- to the
        per-thread time per sample that :meth:`estimate` pipelines into
        ``thread_bound``.  The diagnosis layer uses this as the
        attribution fallback for backends that measure no traces.
        """
        env = self.environment
        storage = env.storage
        pipeline = plan.pipeline
        threads = min(config.threads, pipeline.sample_count)
        stored = plan.materialized
        codec = get_codec(config.compression)
        raw_bytes = stored.bytes_per_sample
        disk_bytes = (raw_bytes if plan.is_unprocessed
                      else stored.compressed_bytes_per_sample(
                          config.compression))
        stream_bw = min(storage.stream_bw, storage.aggregate_bw / threads)
        opens_per_sample = ((stored.n_files / pipeline.sample_count)
                            if stored.n_files is not None else 0.0)
        open_concurrency = min(threads, storage.metadata_slots)
        return {
            "open": (opens_per_sample * storage.pipeline_open_latency
                     * stored.open_latency_factor
                     * threads / max(open_concurrency, 1)),
            "read": disk_bytes / stream_bw,
            "decompress": (raw_bytes / codec.costs.decompress_bw
                           if codec else 0.0),
            "deserialize": (cal.DESER_FIXED
                            + raw_bytes * stored.deser_penalty
                            / cal.DESER_BW_PER_THREAD
                            if stored.record_format else 0.0),
            "native_cpu": sum(step.cpu_seconds
                              for step in plan.online_steps
                              if not step.holds_gil),
            "external_cpu": sum(step.cpu_seconds
                                for step in plan.online_steps
                                if step.holds_gil),
            "shuffle": (cal.SHUFFLE_PER_SAMPLE if config.shuffle_buffer
                        else 0.0),
            "overhead": cal.runtime_overhead(raw_bytes),
            "dispatch": cal.DISPATCH_COST,
        }

    def estimate(self, plan: SplitPlan,
                 config: RunConfig) -> StrategyEstimate:
        if plan.is_unprocessed and config.compression:
            raise ProfilingError(
                "compression on the unprocessed strategy is not meaningful")
        env = self.environment
        storage = env.storage
        pipeline = plan.pipeline
        threads = min(config.threads, pipeline.sample_count)
        stored = plan.materialized
        raw_bytes = stored.bytes_per_sample
        disk_bytes = (raw_bytes if plan.is_unprocessed
                      else stored.compressed_bytes_per_sample(
                          config.compression))

        # -- per-thread sequential time per sample -------------------------
        components = self.sample_time_components(plan, config)
        opens_per_sample = ((stored.n_files / pipeline.sample_count)
                            if stored.n_files is not None else 0.0)
        external_cpu = components["external_cpu"]
        t_thread = sum(components.values())
        thread_bound = threads / t_thread

        # -- serialized and shared caps -------------------------------------
        convoy_waiters = min(threads - 1, 8)
        dispatch_bound = 1.0 / (cal.DISPATCH_COST
                                + convoy_waiters * cal.DISPATCH_CONVOY)
        if external_cpu > 0:
            gil_bound = 1.0 / (external_cpu
                               + convoy_waiters * cal.GIL_CONVOY)
        else:
            gil_bound = float("inf")
        link_bound = (storage.aggregate_bw / disk_bytes
                      if disk_bytes > 0 else float("inf"))
        if opens_per_sample > 0:
            metadata_bound = (storage.metadata_slots
                              / (opens_per_sample
                                 * storage.pipeline_open_latency))
        else:
            metadata_bound = float("inf")

        throughput = min(thread_bound, dispatch_bound, gil_bound,
                         link_bound, metadata_bound)
        return StrategyEstimate(
            pipeline=pipeline.name,
            strategy=plan.strategy_name,
            throughput=throughput,
            thread_bound=thread_bound,
            dispatch_bound=dispatch_bound,
            gil_bound=gil_bound,
            link_bound=link_bound,
            metadata_bound=metadata_bound,
            storage_bytes=disk_bytes * pipeline.sample_count,
            offline_seconds=self._offline_estimate(plan, config),
        )

    # -- offline ------------------------------------------------------------

    def _offline_estimate(self, plan: SplitPlan, config: RunConfig) -> float:
        if plan.is_unprocessed:
            return 0.0
        env = self.environment
        storage = env.storage
        pipeline = plan.pipeline
        threads = min(config.threads, pipeline.sample_count)
        source = pipeline.source
        count = pipeline.sample_count
        out_bytes = plan.materialized.bytes_per_sample
        codec = get_codec(config.compression)

        opens = (source.n_files / count if source.n_files is not None
                 else 0.0)
        open_concurrency = min(threads, storage.metadata_slots)
        per_sample = (
            opens * storage.pipeline_open_latency
            * threads / max(open_concurrency, 1)
            + source.bytes_per_sample
            / min(storage.stream_bw, storage.aggregate_bw / threads)
            + sum(step.cpu_seconds for step in plan.offline_steps
                  if not step.holds_gil)
            + cal.DESER_FIXED + out_bytes / cal.SER_BW_PER_THREAD
            + (out_bytes / codec.costs.compress_bw if codec else 0.0)
        )
        external = sum(step.cpu_seconds for step in plan.offline_steps
                       if step.holds_gil)
        parallel_time = count * per_sample / threads
        serial_time = count * external
        stored_bytes = plan.materialized.compressed_bytes_per_sample(
            config.compression) * count
        write_time = stored_bytes / storage.write_bw
        return max(parallel_time + serial_time, write_time)
