"""The in-process backend: real execution on real bytes.

Materialises a miniature synthetic dataset on the local filesystem,
really runs the offline steps, really writes/reads record shards
(optionally compressed), really executes the online NumPy ops on worker
threads via :mod:`repro.pipeline`, and reports wall-clock timings.

This backend exists to prove the whole API end-to-end and to give the
examples something tangible to run; absolute numbers depend on the host
machine and the miniature scale, so the paper's figures are regenerated
with the simulated backend instead.
"""

from __future__ import annotations

import itertools
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.backends.base import (CACHE_APPLICATION, Environment, EpochResult,
                                 OfflineResult, RunConfig, StrategyRunResult)
from repro.datasets.synthetic import SyntheticSource
from repro.errors import CodecError, ProfilingError
from repro.formats.tensor import deserialize_tensor, serialize_tensor
from repro.pipeline.dataset import PipelineDataset
from repro.pipeline.io import shard_sizes, write_shards
from repro.pipeline.runtime import AppCacheOverflowError

#: Default miniature dataset size.
DEFAULT_SAMPLE_COUNT = 48


def _pack(sample: Any) -> bytes:
    """Tag-prefixed serialization of pipeline elements."""
    if isinstance(sample, np.ndarray):
        return b"T" + serialize_tensor(sample)
    if isinstance(sample, bytes):
        return b"B" + sample
    if isinstance(sample, str):
        return b"S" + sample.encode("utf-8")
    raise CodecError(f"cannot serialize element of type {type(sample)}")


def _unpack(payload: bytes) -> Any:
    tag, body = payload[:1], payload[1:]
    if tag == b"T":
        return deserialize_tensor(body)
    if tag == b"B":
        return bytes(body)
    if tag == b"S":
        return body.decode("utf-8")
    raise CodecError(f"unknown element tag {tag!r}")


class _RngPool:
    """Thread-safe per-call RNG provider for non-deterministic steps."""

    def __init__(self, seed: int):
        self.seed = seed
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def next_rng(self) -> np.random.Generator:
        with self._lock:
            ticket = next(self._counter)
        return np.random.default_rng((self.seed, ticket))


class InProcessBackend:
    """Runs strategies for real on a miniature synthetic dataset."""

    def __init__(self, workdir: Optional[str] = None,
                 sample_count: int = DEFAULT_SAMPLE_COUNT, seed: int = 0,
                 environment: Optional[Environment] = None):
        if sample_count < 1:
            raise ProfilingError("sample count must be positive")
        self.sample_count = sample_count
        self.seed = seed
        self.environment = environment or Environment()
        self._workdir = Path(workdir) if workdir else None
        self._owned_dir: Optional[Path] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def workdir(self) -> Path:
        if self._workdir is None:
            self._owned_dir = Path(tempfile.mkdtemp(prefix="repro-presto-"))
            self._workdir = self._owned_dir
        return self._workdir

    def cleanup(self) -> None:
        """Remove any temp directory this backend created."""
        if self._owned_dir is not None and self._owned_dir.exists():
            shutil.rmtree(self._owned_dir)
            self._owned_dir = None
            self._workdir = None

    def __enter__(self) -> "InProcessBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.cleanup()

    # -- execution -----------------------------------------------------------

    def run(self, plan, config: RunConfig) -> StrategyRunResult:
        if plan.is_unprocessed and config.compression:
            raise ProfilingError(
                "compression on the unprocessed strategy is not meaningful")
        pipeline = plan.pipeline
        count = min(self.sample_count, pipeline.sample_count)
        source = SyntheticSource(pipeline.name, count, seed=self.seed)
        rng_pool = _RngPool(self.seed + 1)
        run_dir = Path(tempfile.mkdtemp(
            prefix=f"{pipeline.name}-{plan.strategy_name}-",
            dir=self.workdir))
        try:
            return self._run_in(run_dir, plan, config, source, count,
                                rng_pool)
        finally:
            shutil.rmtree(run_dir, ignore_errors=True)

    def _run_in(self, run_dir: Path, plan, config: RunConfig,
                source: SyntheticSource, count: int,
                rng_pool: _RngPool) -> StrategyRunResult:
        offline_steps = list(plan.offline_steps)
        online_steps = list(plan.online_steps)

        # ---- offline phase: materialise the split representation ----
        start = time.perf_counter()
        materialised: list[bytes] = []
        bytes_read = 0
        for payload in source.generate():
            bytes_read += len(payload)
            sample: Any = payload
            for step in offline_steps:
                sample = step.fn(sample, rng_pool.next_rng())
            materialised.append(_pack(sample))
        if plan.is_unprocessed:
            paths = write_shards(materialised, run_dir / "shards",
                                 n_shards=min(count,
                                              config.effective_shards * 4))
        else:
            paths = write_shards(materialised, run_dir / "shards",
                                 n_shards=config.effective_shards,
                                 compression=config.compression)
        offline_duration = time.perf_counter() - start
        storage_bytes = shard_sizes(paths)
        offline = None
        if not plan.is_unprocessed:
            offline = OfflineResult(duration=offline_duration,
                                    bytes_read=bytes_read,
                                    bytes_written=storage_bytes)

        # ---- online pipeline over the shards ----
        def apply_online(sample: Any) -> Any:
            for step in online_steps:
                sample = step.fn(sample, rng_pool.next_rng())
            return sample

        deterministic = [s for s in online_steps if s.deterministic]
        nondeterministic = [s for s in online_steps if not s.deterministic]

        def apply_steps(steps):
            def fn(sample: Any) -> Any:
                for step in steps:
                    sample = step.fn(sample, rng_pool.next_rng())
                return sample
            return fn

        dataset = (PipelineDataset
                   .from_record_shards(paths)
                   .map(_unpack, name="deserialize"))
        if config.cache_mode == CACHE_APPLICATION:
            dataset = dataset.map(
                apply_steps(deterministic), name="deterministic",
                num_parallel_calls=config.threads)
            dataset = dataset.cache(
                capacity_bytes=self.environment.ram_bytes)
            if nondeterministic:
                dataset = dataset.map(apply_steps(nondeterministic),
                                      name="augment")
        else:
            dataset = dataset.map(apply_online, name="online",
                                  num_parallel_calls=config.threads)
        if config.shuffle_buffer:
            dataset = dataset.shuffle(config.shuffle_buffer, seed=self.seed)
        dataset = dataset.prefetch(config.threads)

        result = StrategyRunResult(
            pipeline=plan.pipeline.name,
            strategy=plan.strategy_name,
            config=config,
            environment=self.environment,
            storage_bytes=storage_bytes,
            offline=offline,
        )
        for epoch in range(config.epochs):
            epoch_start = time.perf_counter()
            try:
                consumed = self._consume(dataset)
            except AppCacheOverflowError:
                result.app_cache_failed = True
                break
            duration = max(time.perf_counter() - epoch_start, 1e-9)
            result.epochs.append(EpochResult(
                epoch=epoch,
                duration=duration,
                samples=consumed,
                bytes_from_storage=(storage_bytes if epoch == 0
                                    or config.cache_mode == "none" else 0),
                bytes_from_cache=(0 if epoch == 0
                                  or config.cache_mode == "none"
                                  else storage_bytes),
                cache_hit_rate=0.0,
                served_from_app_cache=(
                    epoch > 0 and config.cache_mode == CACHE_APPLICATION),
            ))
        return result

    @staticmethod
    def _consume(dataset: PipelineDataset) -> int:
        """Simulate the training process: touch each tensor's shape, as
        the paper does, without running a model."""
        consumed = 0
        for element in dataset:
            if isinstance(element, np.ndarray):
                _ = element.shape
            consumed += 1
        return consumed
