"""Execution backends for strategy profiling.

All backends expose the same contract (:class:`repro.backends.base.Backend`):
given a :class:`~repro.pipelines.base.SplitPlan` and a
:class:`~repro.backends.base.RunConfig`, produce a
:class:`~repro.backends.base.StrategyRunResult` with the paper's three key
metrics -- preprocessing time, storage consumption, throughput -- plus
dstat-style counters.

* :class:`~repro.backends.simulated.SimulatedBackend` -- deterministic
  discrete-event execution at full dataset scale (regenerates the paper).
* :class:`~repro.backends.analytic.AnalyticModel` -- closed-form
  bottleneck estimates (fast pre-screening; cross-validated vs the DES).
* :class:`~repro.backends.inprocess.InProcessBackend` -- really runs the
  NumPy ops on real bytes through the threaded pipeline runtime.
"""

from repro.backends.base import (Environment, EpochResult, OfflineResult,
                                 RunConfig, StrategyRunResult)
from repro.backends.simulated import SimulatedBackend
from repro.backends.analytic import AnalyticModel
from repro.backends.inprocess import InProcessBackend

__all__ = [
    "Environment",
    "EpochResult",
    "OfflineResult",
    "RunConfig",
    "StrategyRunResult",
    "SimulatedBackend",
    "AnalyticModel",
    "InProcessBackend",
]
