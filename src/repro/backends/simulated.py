"""The discrete-event execution backend.

Runs a strategy (a :class:`~repro.pipelines.base.SplitPlan` plus a
:class:`~repro.backends.base.RunConfig`) on the simulated cluster/VM and
returns measured metrics.  The model (see DESIGN.md):

* ``threads`` reader processes each work through their shard of samples,
  batched into jobs (``calibration.MAX_JOBS_PER_RUN`` caps event counts
  without diluting contention -- locks charge per *sample*).
* Per job: per-file opens (file-per-sample sources) -> network read
  through the page cache -> decompression -> record deserialization ->
  online step CPU (native work occupies cores, external work holds the
  GIL) -> the serialized dispatch hand-off.
* Offline phases read the source, run the offline steps, serialize,
  optionally compress, and write the materialised representation.
* The page cache persists across epochs unless ``cache_mode == "none"``
  (the paper drops caches between runs); application-level caching stores
  final tensors and fails when they exceed RAM, exactly like
  ``tf.data.Dataset.cache`` OOM-ing in the paper's last CV/NLP strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro import calibration as cal
from repro.backends.base import (CACHE_APPLICATION, CACHE_NONE, Environment,
                                 EpochResult, OfflineResult, RunConfig,
                                 StrategyRunResult)
from repro.errors import ProfilingError
from repro.formats.compression import get_codec
from repro.pipelines.base import Representation, SplitPlan, StepSpec
from repro.sim.cluster import StorageCluster
from repro.sim.cpu import Machine
from repro.sim.events import Event, Simulation, all_of
from repro.sim.trace import ResourceTrace, timed, timed_wait


@dataclass
class _JobPlan:
    """One batched unit of thread work."""

    thread_id: int
    job_index: int
    samples: int


def partition_jobs(sample_count: int, threads: int,
                   max_jobs: int) -> list[list[_JobPlan]]:
    """Split ``sample_count`` samples into per-thread job lists.

    Samples are spread as evenly as possible across threads (the paper
    shards datasets so each thread owns a file), then each thread's share
    is cut into roughly ``max_jobs / threads`` jobs.
    """
    if sample_count < 1:
        raise ProfilingError("cannot run an empty dataset")
    threads = min(threads, sample_count)
    per_thread = [sample_count // threads] * threads
    for index in range(sample_count % threads):
        per_thread[index] += 1
    jobs_per_thread = max(1, max_jobs // threads)
    plans: list[list[_JobPlan]] = []
    for thread_id, thread_samples in enumerate(per_thread):
        n_jobs = min(jobs_per_thread, thread_samples)
        base, extra = divmod(thread_samples, n_jobs)
        jobs = []
        for job_index in range(n_jobs):
            samples = base + (1 if job_index < extra else 0)
            jobs.append(_JobPlan(thread_id, job_index, samples))
        plans.append(jobs)
    return plans


class SimulatedBackend:
    """Deterministic full-scale strategy execution on the DES.

    ``collect_traces`` attaches a per-epoch
    :class:`~repro.sim.trace.ResourceTrace` to every
    :class:`~repro.backends.base.EpochResult` (elapsed-time attribution
    for the diagnosis layer).  Tracing only reads the simulation clock,
    so traced and untraced runs are event-for-event identical.

    The offline phase and each training epoch are exposed as *process
    generators* (:meth:`offline_process`, :meth:`epoch_process`) so they
    can run either standalone -- :meth:`run` drives them through a fresh
    private simulation -- or as one of many concurrent jobs sharing a
    simulation, storage cluster, page cache and CPU pool (the
    ``repro.serve`` multi-tenant service).  All byte and cache-hit
    accounting is therefore kept local to the job instead of being read
    off global cluster counters, which other tenants would pollute.
    """

    def __init__(self, environment: Optional[Environment] = None,
                 collect_traces: bool = True):
        self.environment = environment or Environment()
        self.collect_traces = collect_traces

    # -- public entry point -----------------------------------------------

    def run(self, plan: SplitPlan, config: RunConfig) -> StrategyRunResult:
        if plan.is_unprocessed and config.compression:
            raise ProfilingError(
                "compression on the unprocessed strategy is not meaningful: "
                "random file access dominates (paper Sec. 4.3)")
        sim = Simulation()
        machine = Machine(
            sim, cores=self.environment.cores,
            ram_bytes=self.environment.ram_bytes,
            page_cache_bytes=(cal.PAGE_CACHE_FRACTION
                              * self.environment.ram_bytes),
            memory_bw=self.environment.memory_bw,
            memory_stream_bw=self.environment.memory_stream_bw,
            dispatch_cost=cal.DISPATCH_COST,
            dispatch_convoy=cal.DISPATCH_CONVOY,
            gil_convoy=cal.GIL_CONVOY)
        cluster = StorageCluster(sim, self.environment.storage,
                                 memory_link=machine.memory_link)
        # Ceph serves a fixed striping share per client stream once many
        # readers are configured; pin the per-stream rate to the fair share
        # so partially-idle readers do not transiently exceed it (matches
        # the paper's measured per-strategy network read speeds).
        storage = self.environment.storage
        cluster.read_link.per_stream_bw = min(
            storage.stream_bw, storage.aggregate_bw / config.threads)

        pipeline = plan.pipeline
        count = pipeline.sample_count
        stored = plan.materialized
        if plan.is_unprocessed:
            stored_bytes_ps = stored.bytes_per_sample
        else:
            stored_bytes_ps = stored.compressed_bytes_per_sample(
                config.compression)

        offline = None
        if not plan.is_unprocessed:
            offline = self._run_offline(sim, machine, cluster, plan, config)
            machine.drop_page_cache()

        # Application-cache admission check (paper Sec. 4.2 obs. 4).
        app_tensor_bytes_ps = self._app_cache_tensor_bytes(plan)
        app_cache_fits = (app_tensor_bytes_ps * count
                          <= self.environment.ram_bytes)
        app_cache_failed = (config.cache_mode == CACHE_APPLICATION
                            and not app_cache_fits)

        result = StrategyRunResult(
            pipeline=pipeline.name,
            strategy=plan.strategy_name,
            config=config,
            environment=self.environment,
            storage_bytes=stored_bytes_ps * count,
            offline=offline,
            app_cache_failed=app_cache_failed,
        )
        app_cache_ready = False
        for epoch in range(config.epochs):
            use_app_cache = (config.cache_mode == CACHE_APPLICATION
                             and app_cache_fits and app_cache_ready)
            epoch_result = self._run_epoch(
                sim, machine, cluster, plan, config, epoch,
                stored_bytes_ps=stored_bytes_ps,
                from_app_cache=use_app_cache,
                populate_app_cache=(config.cache_mode == CACHE_APPLICATION
                                    and app_cache_fits
                                    and not app_cache_ready),
                app_tensor_bytes_ps=app_tensor_bytes_ps)
            result.epochs.append(epoch_result)
            if config.cache_mode == CACHE_NONE:
                machine.drop_page_cache()
            if config.cache_mode == CACHE_APPLICATION and app_cache_fits:
                app_cache_ready = True
        return result

    # -- offline phase ------------------------------------------------------

    def _run_offline(self, sim: Simulation, machine: Machine,
                     cluster: StorageCluster, plan: SplitPlan,
                     config: RunConfig) -> OfflineResult:
        return sim.run_process(
            self.offline_process(sim, machine, cluster, plan, config),
            name="offline")

    def offline_process(self, sim: Simulation, machine: Machine,
                        cluster: StorageCluster, plan: SplitPlan,
                        config: RunConfig,
                        ) -> Generator[Event, None, OfflineResult]:
        """Materialise ``plan`` as a process generator.

        ``yield from`` this inside any simulation process (the service
        runs one per tenant); the return value is the
        :class:`~repro.backends.base.OfflineResult`.
        """
        pipeline = plan.pipeline
        source = pipeline.source
        count = pipeline.sample_count
        out_bytes_ps = plan.materialized.bytes_per_sample
        stored_bytes_ps = plan.materialized.compressed_bytes_per_sample(
            config.compression)
        codec = get_codec(config.compression)
        opens_per_sample = self._opens_per_sample(source, count)
        start = sim.now
        counters = {"read": 0.0, "write": 0.0, "compress": 0.0}

        def worker(jobs: list[_JobPlan]) -> Generator[Event, None, None]:
            for job in jobs:
                k = job.samples
                opens = opens_per_sample * k
                if opens > 0:
                    yield from cluster.metadata.use(
                        opens * self._open_latency())
                read_bytes = k * source.bytes_per_sample
                counters["read"] += read_bytes
                yield cluster.read_link.transfer(read_bytes)
                yield sim.timeout(
                    k * cal.runtime_overhead(source.bytes_per_sample))
                for step in plan.offline_steps:
                    yield from self._charge_step(machine, step, k)
                # Serialize the materialised records.
                serialize_seconds = k * (
                    cal.DESER_FIXED
                    + out_bytes_ps / cal.SER_BW_PER_THREAD)
                yield from machine.compute_native(serialize_seconds)
                if codec is not None:
                    compress_seconds = (k * out_bytes_ps
                                        / codec.costs.compress_bw)
                    counters["compress"] += compress_seconds
                    yield from machine.compute_native(compress_seconds)
                write_bytes = k * stored_bytes_ps
                counters["write"] += write_bytes
                yield from cluster.write(write_bytes)

        processes = [sim.process(worker(jobs), name=f"offline-{i}")
                     for i, jobs in enumerate(partition_jobs(
                         count, config.threads, config.max_jobs))]
        yield all_of(sim, processes)
        return OfflineResult(
            duration=sim.now - start,
            bytes_read=counters["read"],
            bytes_written=counters["write"],
            compression_seconds=counters["compress"],
        )

    # -- online epochs -------------------------------------------------------

    def _run_epoch(self, sim: Simulation, machine: Machine,
                   cluster: StorageCluster, plan: SplitPlan,
                   config: RunConfig, epoch: int, stored_bytes_ps: float,
                   from_app_cache: bool, populate_app_cache: bool,
                   app_tensor_bytes_ps: float) -> EpochResult:
        return sim.run_process(
            self.epoch_process(
                sim, machine, cluster, plan, config, epoch,
                stored_bytes_ps=stored_bytes_ps,
                from_app_cache=from_app_cache,
                populate_app_cache=populate_app_cache,
                app_tensor_bytes_ps=app_tensor_bytes_ps),
            name="epoch-barrier")

    def epoch_process(self, sim: Simulation, machine: Machine,
                      cluster: StorageCluster, plan: SplitPlan,
                      config: RunConfig, epoch: int, stored_bytes_ps: float,
                      from_app_cache: bool = False,
                      populate_app_cache: bool = False,
                      app_tensor_bytes_ps: float = 0.0,
                      chunk_namespace=None,
                      ) -> Generator[Event, None, EpochResult]:
        """Run one training epoch as a process generator.

        ``chunk_namespace`` prefixes every page-cache chunk key; jobs
        sharing a namespace (tenants reading one deduplicated artifact)
        hit each other's cached chunks, while distinct namespaces keep
        tenants' private copies isolated.  ``None`` keeps the historical
        single-job keys.
        """
        pipeline = plan.pipeline
        count = pipeline.sample_count
        stored = plan.materialized
        codec = get_codec(config.compression)
        opens_per_sample = self._opens_per_sample(stored, count)
        online_steps = plan.online_steps
        nondet_steps = [s for s in online_steps if not s.deterministic]
        start = sim.now
        counters = {"storage": 0.0, "cache": 0.0, "hits": 0, "misses": 0}
        job_plans = partition_jobs(count, config.threads, config.max_jobs)
        trace = (ResourceTrace(threads=len(job_plans))
                 if self.collect_traces else None)

        def worker(jobs: list[_JobPlan]) -> Generator[Event, None, None]:
            if config.shuffle_buffer and jobs and jobs[0].thread_id == 0:
                yield sim.timeout(cal.SHUFFLE_BUFFER_ALLOC)
            for job in jobs:
                k = job.samples
                if from_app_cache:
                    # Served entirely from the tensor cache: memory read,
                    # non-deterministic steps, light iterator hand-off.
                    yield from timed(sim, trace, "memory",
                                     machine.read_memory(
                                         k * app_tensor_bytes_ps))
                    for step in nondet_steps:
                        yield from self._charge_step(machine, step, k,
                                                     sim=sim, trace=trace)
                    yield from timed(sim, trace, "dispatch",
                                     machine.dispatch.hold_scaled(
                                         cal.APP_CACHE_ITER_COST, k))
                    continue
                opens = opens_per_sample * k
                chunk_key = (chunk_namespace, stored.name,
                             config.compression, job.thread_id,
                             job.job_index)
                cached = machine.page_cache.lookup(chunk_key)
                disk_bytes = k * stored_bytes_ps
                if cached:
                    counters["hits"] += 1
                    counters["cache"] += disk_bytes
                    cluster.cache_bytes_read += disk_bytes
                    yield from timed(sim, trace, "memory",
                                     machine.read_memory(disk_bytes))
                else:
                    counters["misses"] += 1
                    counters["storage"] += disk_bytes
                    if opens > 0:
                        yield from timed(sim, trace, "open",
                                         cluster.metadata.use(
                                             opens * self._open_latency()
                                             * stored.open_latency_factor))
                    yield from timed_wait(
                        sim, trace, "read",
                        cluster.read_link.transfer(disk_bytes))
                    machine.page_cache.insert(chunk_key, disk_bytes)
                yield sim.timeout(
                    k * cal.runtime_overhead(stored.bytes_per_sample))
                if codec is not None:
                    yield from timed(sim, trace, "decode",
                                     machine.compute_native(
                                         k * stored.bytes_per_sample
                                         / codec.costs.decompress_bw))
                if stored.record_format:
                    yield from timed(sim, trace, "decode",
                                     machine.compute_native(k * (
                                         cal.DESER_FIXED
                                         + stored.bytes_per_sample
                                         * stored.deser_penalty
                                         / cal.DESER_BW_PER_THREAD)))
                for step in online_steps:
                    yield from self._charge_step(machine, step, k,
                                                 sim=sim, trace=trace)
                if config.shuffle_buffer:
                    yield from timed(sim, trace, "shuffle",
                                     machine.compute_native(
                                         k * cal.SHUFFLE_PER_SAMPLE))
                if populate_app_cache:
                    yield from timed(sim, trace, "memory",
                                     machine.read_memory(
                                         k * app_tensor_bytes_ps))
                yield from timed(sim, trace, "dispatch",
                                 machine.dispatch.hold_scaled(
                                     machine.dispatch_cost, k))

        processes = [sim.process(worker(jobs), name=f"worker-{i}")
                     for i, jobs in enumerate(job_plans)]
        yield all_of(sim, processes)
        lookups = counters["hits"] + counters["misses"]
        epoch_result = EpochResult(
            epoch=epoch,
            duration=sim.now - start,
            samples=count,
            bytes_from_storage=counters["storage"],
            bytes_from_cache=counters["cache"],
            cache_hit_rate=counters["hits"] / lookups if lookups else 0.0,
            served_from_app_cache=from_app_cache,
            trace=trace,
        )
        if trace is not None:
            trace.duration = epoch_result.duration
            trace.bytes_from_storage = epoch_result.bytes_from_storage
            trace.bytes_from_cache = epoch_result.bytes_from_cache
            trace.cache_hit_rate = epoch_result.cache_hit_rate
        return epoch_result

    # -- helpers ------------------------------------------------------------

    def _open_latency(self) -> float:
        return self.environment.storage.pipeline_open_latency

    @staticmethod
    def _opens_per_sample(rep: Representation, count: int) -> float:
        """File opens charged per sample for this representation.

        Materialised record shards (a handful of files) are free to open;
        file-per-sample sources pay one open each; container sources
        (NILM's 744 HDF5 files) pay a pro-rated fraction.
        """
        if rep.n_files is None:
            return 0.0
        opens = rep.n_files / count
        return opens if opens > 1e-3 else 0.0

    @staticmethod
    def _charge_step(machine: Machine, step: StepSpec, samples: int,
                     sim: Optional[Simulation] = None,
                     trace: Optional[ResourceTrace] = None,
                     ) -> Generator[Event, None, None]:
        if step.cpu_seconds <= 0:
            return
        if step.holds_gil:
            work = machine.gil.hold_scaled(step.cpu_seconds, samples)
            category = "gil"
        else:
            work = machine.compute_native(samples * step.cpu_seconds)
            category = "cpu"
        if sim is None or trace is None:
            yield from work
        else:
            yield from timed(sim, trace, category, work)

    @staticmethod
    def _app_cache_tensor_bytes(plan: SplitPlan) -> float:
        """In-memory tensor size cached by application-level caching.

        ``tf.data.Dataset.cache`` sits after the last deterministic step,
        so the cached element is the furthest materialisable
        representation, held uncompressed in RAM.
        """
        pipeline = plan.pipeline
        return pipeline.representations[
            pipeline.max_offline_index()].bytes_per_sample

