"""The discrete-event execution backend.

Runs a strategy (a :class:`~repro.pipelines.base.SplitPlan` plus a
:class:`~repro.backends.base.RunConfig`) on the simulated cluster/VM and
returns measured metrics.  The model (see DESIGN.md):

* ``threads`` reader processes each work through their shard of samples,
  batched into jobs (``calibration.MAX_JOBS_PER_RUN`` caps event counts
  without diluting contention -- locks charge per *sample*).
* Per job: per-file opens (file-per-sample sources) -> network read
  through the page cache -> decompression -> record deserialization ->
  online step CPU (native work occupies cores, external work holds the
  GIL) -> the serialized dispatch hand-off.
* Offline phases read the source, run the offline steps, serialize,
  optionally compress, and write the materialised representation.
* The page cache persists across epochs unless ``cache_mode == "none"``
  (the paper drops caches between runs); application-level caching stores
  final tensors and fails when they exceed RAM, exactly like
  ``tf.data.Dataset.cache`` OOM-ing in the paper's last CV/NLP strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro import calibration as cal
from repro.backends.base import (CACHE_APPLICATION, CACHE_NONE, Environment,
                                 EpochResult, OfflineResult, RunConfig,
                                 StrategyRunResult)
from repro.errors import ProfilingError
from repro.formats.compression import get_codec
from repro.pipelines.base import Representation, SplitPlan
from repro.sim.cluster import StorageCluster
from repro.sim.cpu import Machine
from repro.sim.events import Event, Simulation, Timeout, all_of
from repro.sim.trace import ResourceTrace


@dataclass(frozen=True)
class _JobPlan:
    """One batched unit of thread work (immutable: plans are memoized
    and shared across epochs and tenants)."""

    thread_id: int
    job_index: int
    samples: int


#: Memo for partition_jobs: the same (samples, threads, max_jobs) shape
#: recurs for every epoch of every tenant; plans are never mutated.
_PARTITION_CACHE: dict[tuple[int, int, int], list[list["_JobPlan"]]] = {}


def partition_jobs(sample_count: int, threads: int,
                   max_jobs: int) -> list[list[_JobPlan]]:
    """Split ``sample_count`` samples into per-thread job lists.

    Samples are spread as evenly as possible across threads (the paper
    shards datasets so each thread owns a file), then each thread's share
    is cut into roughly ``max_jobs / threads`` jobs.  Results are cached
    (plans are frozen, so sharing them is safe).
    """
    if sample_count < 1:
        raise ProfilingError("cannot run an empty dataset")
    key = (sample_count, threads, max_jobs)
    cached = _PARTITION_CACHE.get(key)
    if cached is not None:
        return cached
    threads = min(threads, sample_count)
    per_thread = [sample_count // threads] * threads
    for index in range(sample_count % threads):
        per_thread[index] += 1
    jobs_per_thread = max(1, max_jobs // threads)
    plans: list[list[_JobPlan]] = []
    for thread_id, thread_samples in enumerate(per_thread):
        n_jobs = min(jobs_per_thread, thread_samples)
        base, extra = divmod(thread_samples, n_jobs)
        jobs = []
        for job_index in range(n_jobs):
            samples = base + (1 if job_index < extra else 0)
            jobs.append(_JobPlan(thread_id, job_index, samples))
        plans.append(jobs)
    if len(_PARTITION_CACHE) < 4096:
        _PARTITION_CACHE[key] = plans
    return plans


class SimulatedBackend:
    """Deterministic full-scale strategy execution on the DES.

    ``collect_traces`` attaches a per-epoch
    :class:`~repro.sim.trace.ResourceTrace` to every
    :class:`~repro.backends.base.EpochResult` (elapsed-time attribution
    for the diagnosis layer).  Tracing only reads the simulation clock,
    so traced and untraced runs are event-for-event identical.

    The offline phase and each training epoch are exposed as *process
    generators* (:meth:`offline_process`, :meth:`epoch_process`) so they
    can run either standalone -- :meth:`run` drives them through a fresh
    private simulation -- or as one of many concurrent jobs sharing a
    simulation, storage cluster, page cache and CPU pool (the
    ``repro.serve`` multi-tenant service).  All byte and cache-hit
    accounting is therefore kept local to the job instead of being read
    off global cluster counters, which other tenants would pollute.
    """

    def __init__(self, environment: Optional[Environment] = None,
                 collect_traces: bool = True, tracer=None):
        self.environment = environment or Environment()
        self.collect_traces = collect_traces
        #: Optional :class:`repro.obs.Tracer`.  Like ``collect_traces``,
        #: span emission only reads the simulation clock: traced and
        #: untraced runs schedule identical events.  Per-batch and
        #: per-transfer spans additionally require ``tracer.detail``.
        self.tracer = tracer

    # -- public entry point -----------------------------------------------

    def run(self, plan: SplitPlan, config: RunConfig) -> StrategyRunResult:
        if plan.is_unprocessed and config.compression:
            raise ProfilingError(
                "compression on the unprocessed strategy is not meaningful: "
                "random file access dominates (paper Sec. 4.3)")
        sim = Simulation()
        machine = Machine(
            sim, cores=self.environment.cores,
            ram_bytes=self.environment.ram_bytes,
            page_cache_bytes=(cal.PAGE_CACHE_FRACTION
                              * self.environment.ram_bytes),
            memory_bw=self.environment.memory_bw,
            memory_stream_bw=self.environment.memory_stream_bw,
            dispatch_cost=cal.DISPATCH_COST,
            dispatch_convoy=cal.DISPATCH_CONVOY,
            gil_convoy=cal.GIL_CONVOY)
        cluster = StorageCluster(sim, self.environment.storage,
                                 memory_link=machine.memory_link)
        # Ceph serves a fixed striping share per client stream once many
        # readers are configured; pin the per-stream rate to the fair share
        # so partially-idle readers do not transiently exceed it (matches
        # the paper's measured per-strategy network read speeds).
        storage = self.environment.storage
        cluster.read_link.per_stream_bw = min(
            storage.stream_bw, storage.aggregate_bw / config.threads)

        pipeline = plan.pipeline
        count = pipeline.sample_count
        stored = plan.materialized
        if plan.is_unprocessed:
            stored_bytes_ps = stored.bytes_per_sample
        else:
            stored_bytes_ps = stored.compressed_bytes_per_sample(
                config.compression)

        offline = None
        if not plan.is_unprocessed:
            offline = self._run_offline(sim, machine, cluster, plan, config)
            machine.drop_page_cache()

        # Application-cache admission check (paper Sec. 4.2 obs. 4).
        app_tensor_bytes_ps = self._app_cache_tensor_bytes(plan)
        app_cache_fits = (app_tensor_bytes_ps * count
                          <= self.environment.ram_bytes)
        app_cache_failed = (config.cache_mode == CACHE_APPLICATION
                            and not app_cache_fits)

        result = StrategyRunResult(
            pipeline=pipeline.name,
            strategy=plan.strategy_name,
            config=config,
            environment=self.environment,
            storage_bytes=stored_bytes_ps * count,
            offline=offline,
            app_cache_failed=app_cache_failed,
        )
        app_cache_ready = False
        for epoch in range(config.epochs):
            use_app_cache = (config.cache_mode == CACHE_APPLICATION
                             and app_cache_fits and app_cache_ready)
            epoch_result = self._run_epoch(
                sim, machine, cluster, plan, config, epoch,
                stored_bytes_ps=stored_bytes_ps,
                from_app_cache=use_app_cache,
                populate_app_cache=(config.cache_mode == CACHE_APPLICATION
                                    and app_cache_fits
                                    and not app_cache_ready),
                app_tensor_bytes_ps=app_tensor_bytes_ps)
            result.epochs.append(epoch_result)
            if config.cache_mode == CACHE_NONE:
                machine.drop_page_cache()
            if config.cache_mode == CACHE_APPLICATION and app_cache_fits:
                app_cache_ready = True
        result.events_processed = sim.events_processed
        return result

    # -- offline phase ------------------------------------------------------

    def _run_offline(self, sim: Simulation, machine: Machine,
                     cluster: StorageCluster, plan: SplitPlan,
                     config: RunConfig) -> OfflineResult:
        return sim.run_process(
            self.offline_process(sim, machine, cluster, plan, config),
            name="offline")

    def offline_process(self, sim: Simulation, machine: Machine,
                        cluster: StorageCluster, plan: SplitPlan,
                        config: RunConfig,
                        link_tag: str = "",
                        trace_track: str = "",
                        trace_parent: Optional[int] = None,
                        ) -> Generator[Event, None, OfflineResult]:
        """Materialise ``plan`` as a process generator.

        ``yield from`` this inside any simulation process (the service
        runs one per tenant); the return value is the
        :class:`~repro.backends.base.OfflineResult`.  ``link_tag``
        labels the cluster-link transfers for tie-break policies (the
        serve layer passes the tenant id).  ``trace_track`` /
        ``trace_parent`` place this phase's span on the caller's
        Perfetto track under the caller's span.
        """
        tracer = self.tracer
        offline_span = None
        if tracer is not None:
            offline_span = tracer.start(
                "offline", "offline", trace_track or "backend", sim.now,
                parent=trace_parent,
                args={"strategy": plan.strategy_name})
        pipeline = plan.pipeline
        source = pipeline.source
        count = pipeline.sample_count
        out_bytes_ps = plan.materialized.bytes_per_sample
        stored_bytes_ps = plan.materialized.compressed_bytes_per_sample(
            config.compression)
        codec = get_codec(config.compression)
        opens_per_sample = self._opens_per_sample(source, count)
        start = sim.now
        counters = {"read": 0.0, "write": 0.0, "compress": 0.0}
        # Hot-loop bindings; all arithmetic keeps the exact expression
        # shapes of the historical implementation so simulated timestamps
        # are reproduced bit-for-bit.
        source_bytes_ps = source.bytes_per_sample
        open_latency = self._open_latency()
        overhead_ps = cal.runtime_overhead(source_bytes_ps)
        serialize_ps = cal.DESER_FIXED + out_bytes_ps / cal.SER_BW_PER_THREAD
        compress_bw = codec.costs.compress_bw if codec is not None else None
        offline_charges = [(step.holds_gil, step.cpu_seconds)
                           for step in plan.offline_steps
                           if step.cpu_seconds > 0]
        metadata = cluster.metadata
        read_link = cluster.read_link
        write_link = cluster.write_link
        gil = machine.gil
        gil_convoy = gil.convoy_overhead
        gil_max_waiters = gil.max_convoy_waiters
        gil_waiters = gil._waiters
        cores = machine.cores

        def native(cpu_seconds: float) -> Generator[Event, None, None]:
            """Inlined ``machine.compute_native`` (hot path, one frame)."""
            machine.cpu_busy_seconds += cpu_seconds
            yield cores.acquire()
            try:
                yield Timeout(sim, cpu_seconds)
            finally:
                cores.release()

        def worker(jobs: list[_JobPlan]) -> Generator[Event, None, None]:
            for job in jobs:
                k = job.samples
                opens = opens_per_sample * k
                if opens > 0:
                    yield metadata.acquire()
                    try:
                        yield Timeout(sim, opens * open_latency)
                    finally:
                        metadata.release()
                read_bytes = k * source_bytes_ps
                counters["read"] += read_bytes
                yield read_link.transfer(read_bytes, link_tag)
                yield Timeout(sim, k * overhead_ps)
                for holds_gil, cpu_seconds in offline_charges:
                    if holds_gil:
                        # Inlined gil.hold_scaled: convoy per sample.
                        yield gil.acquire()
                        try:
                            waiters = len(gil_waiters)
                            if waiters > gil_max_waiters:
                                waiters = gil_max_waiters
                            per_unit = cpu_seconds + waiters * gil_convoy
                            yield Timeout(sim, k * per_unit)
                        finally:
                            gil.release()
                    else:
                        yield from native(k * cpu_seconds)
                # Serialize the materialised records.
                yield from native(k * serialize_ps)
                if compress_bw is not None:
                    compress_seconds = k * out_bytes_ps / compress_bw
                    counters["compress"] += compress_seconds
                    yield from native(compress_seconds)
                write_bytes = k * stored_bytes_ps
                counters["write"] += write_bytes
                yield write_link.transfer(write_bytes, link_tag)

        processes = [sim.process(worker(jobs), name=f"offline-{i}")
                     for i, jobs in enumerate(partition_jobs(
                         count, config.threads, config.max_jobs))]
        yield all_of(sim, processes)
        if offline_span is not None:
            tracer.finish(offline_span, sim.now)
        return OfflineResult(
            duration=sim.now - start,
            bytes_read=counters["read"],
            bytes_written=counters["write"],
            compression_seconds=counters["compress"],
        )

    # -- online epochs -------------------------------------------------------

    def _run_epoch(self, sim: Simulation, machine: Machine,
                   cluster: StorageCluster, plan: SplitPlan,
                   config: RunConfig, epoch: int, stored_bytes_ps: float,
                   from_app_cache: bool, populate_app_cache: bool,
                   app_tensor_bytes_ps: float) -> EpochResult:
        return sim.run_process(
            self.epoch_process(
                sim, machine, cluster, plan, config, epoch,
                stored_bytes_ps=stored_bytes_ps,
                from_app_cache=from_app_cache,
                populate_app_cache=populate_app_cache,
                app_tensor_bytes_ps=app_tensor_bytes_ps),
            name="epoch-barrier")

    def epoch_process(self, sim: Simulation, machine: Machine,
                      cluster: StorageCluster, plan: SplitPlan,
                      config: RunConfig, epoch: int, stored_bytes_ps: float,
                      from_app_cache: bool = False,
                      populate_app_cache: bool = False,
                      app_tensor_bytes_ps: float = 0.0,
                      chunk_namespace=None,
                      link_tag: str = "",
                      trace_track: str = "",
                      trace_parent: Optional[int] = None,
                      ) -> Generator[Event, None, EpochResult]:
        """Run one training epoch as a process generator.

        ``chunk_namespace`` prefixes every page-cache chunk key; jobs
        sharing a namespace (tenants reading one deduplicated artifact)
        hit each other's cached chunks, while distinct namespaces keep
        tenants' private copies isolated.  ``None`` keeps the historical
        single-job keys.  ``link_tag`` labels this job's storage-link
        transfers for the link tie-break policy (the serve layer passes
        the tenant id under ``tie_break="tenant"``).
        """
        pipeline = plan.pipeline
        count = pipeline.sample_count
        stored = plan.materialized
        codec = get_codec(config.compression)
        opens_per_sample = self._opens_per_sample(stored, count)
        online_steps = plan.online_steps
        nondet_steps = [s for s in online_steps if not s.deterministic]
        start = sim.now
        counters = {"storage": 0.0, "cache": 0.0, "hits": 0, "misses": 0}
        job_plans = partition_jobs(count, config.threads, config.max_jobs)
        trace = (ResourceTrace(threads=len(job_plans))
                 if self.collect_traces else None)
        # Span tracing (repro.obs): the epoch span is cheap; per-batch
        # and per-transfer leaves sit behind the detail flag because a
        # default scenario runs up to MAX_JOBS_PER_RUN batches per epoch.
        tracer = self.tracer
        span_track = trace_track or "backend"
        epoch_span = None
        if tracer is not None:
            epoch_span = tracer.start(
                f"epoch {epoch}", "epoch", span_track, sim.now,
                parent=trace_parent,
                args={"epoch": epoch, "strategy": plan.strategy_name})
        detail = tracer if (tracer is not None and tracer.detail) else None
        epoch_span_id = epoch_span.id if epoch_span is not None else None
        # Hot-loop bindings.  The trace brackets are inlined (they only
        # read the clock) and every expression keeps the exact shape of
        # the historical implementation, so traced values and simulated
        # timestamps are reproduced bit-for-bit.
        stored_bytes_ps_raw = stored.bytes_per_sample
        open_latency = self._open_latency()
        open_factor = stored.open_latency_factor
        overhead_ps = cal.runtime_overhead(stored_bytes_ps_raw)
        decompress_bw = (codec.costs.decompress_bw if codec is not None
                         else None)
        deser_ps = (cal.DESER_FIXED + stored_bytes_ps_raw
                    * stored.deser_penalty / cal.DESER_BW_PER_THREAD
                    if stored.record_format else None)
        online_charges = [(step.holds_gil, step.cpu_seconds)
                          for step in online_steps if step.cpu_seconds > 0]
        nondet_charges = [(step.holds_gil, step.cpu_seconds)
                          for step in nondet_steps if step.cpu_seconds > 0]
        shuffle_buffer = config.shuffle_buffer
        shuffle_ps = cal.SHUFFLE_PER_SAMPLE
        compression = config.compression
        stored_name = stored.name
        dispatch_cost = machine.dispatch_cost
        page_cache = machine.page_cache
        memory_link = machine.memory_link
        metadata = cluster.metadata
        read_link = cluster.read_link
        cores = machine.cores
        dispatch = machine.dispatch
        dispatch_convoy = dispatch.convoy_overhead
        dispatch_max_waiters = dispatch.max_convoy_waiters
        dispatch_waiters = dispatch._waiters
        app_iter_cost = cal.APP_CACHE_ITER_COST
        gil = machine.gil
        gil_convoy = gil.convoy_overhead
        gil_max_waiters = gil.max_convoy_waiters
        gil_waiters = gil._waiters

        # The loops below hand-inline machine.compute_native,
        # Lock.hold_scaled and the timed() trace brackets: one generator
        # frame per reader thread instead of three per phase.  This is the
        # hottest code in the repository -- every simulated sample batch of
        # every strategy and every tenant passes through it.

        def worker(jobs: list[_JobPlan]) -> Generator[Event, None, None]:
            if shuffle_buffer and jobs and jobs[0].thread_id == 0:
                yield Timeout(sim, cal.SHUFFLE_BUFFER_ALLOC)
            lane = (f"{span_track}/t{jobs[0].thread_id}"
                    if detail is not None and jobs else span_track)
            batch_span = None
            for job in jobs:
                k = job.samples
                if detail is not None:
                    batch_span = detail.start(
                        "batch", "batch", lane, sim._now,
                        parent=epoch_span_id, args={"samples": k})
                if from_app_cache:
                    # Served entirely from the tensor cache: memory read,
                    # non-deterministic steps, light iterator hand-off.
                    bracket = sim._now
                    yield memory_link.transfer(k * app_tensor_bytes_ps)
                    if trace is not None:
                        trace.memory_seconds += sim._now - bracket
                    for holds_gil, cpu_seconds in nondet_charges:
                        bracket = sim._now
                        if holds_gil:
                            yield gil.acquire()
                            try:
                                waiters = len(gil_waiters)
                                if waiters > gil_max_waiters:
                                    waiters = gil_max_waiters
                                per_unit = (cpu_seconds
                                            + waiters * gil_convoy)
                                yield Timeout(sim, k * per_unit)
                            finally:
                                gil.release()
                            if trace is not None:
                                trace.gil_seconds += sim._now - bracket
                        else:
                            machine.cpu_busy_seconds += k * cpu_seconds
                            yield cores.acquire()
                            try:
                                yield Timeout(sim, k * cpu_seconds)
                            finally:
                                cores.release()
                            if trace is not None:
                                trace.cpu_seconds += sim._now - bracket
                    bracket = sim._now
                    yield dispatch.acquire()
                    try:
                        waiters = len(dispatch_waiters)
                        if waiters > dispatch_max_waiters:
                            waiters = dispatch_max_waiters
                        per_unit = app_iter_cost + waiters * dispatch_convoy
                        yield Timeout(sim, k * per_unit)
                    finally:
                        dispatch.release()
                    if trace is not None:
                        trace.dispatch_seconds += sim._now - bracket
                    if batch_span is not None:
                        detail.finish(batch_span, sim._now)
                    continue
                opens = opens_per_sample * k
                chunk_key = (chunk_namespace, stored_name, compression,
                             job.thread_id, job.job_index)
                disk_bytes = k * stored_bytes_ps
                if page_cache.lookup(chunk_key):
                    counters["hits"] += 1
                    counters["cache"] += disk_bytes
                    cluster.cache_bytes_read += disk_bytes
                    bracket = sim._now
                    yield memory_link.transfer(disk_bytes)
                    if trace is not None:
                        trace.memory_seconds += sim._now - bracket
                    if batch_span is not None:
                        detail.add_complete(
                            "cache-read", "transfer", lane, bracket,
                            sim._now, parent=batch_span.id,
                            args={"bytes": disk_bytes})
                else:
                    counters["misses"] += 1
                    counters["storage"] += disk_bytes
                    if opens > 0:
                        bracket = sim._now
                        yield metadata.acquire()
                        try:
                            yield Timeout(sim, opens * open_latency
                                          * open_factor)
                        finally:
                            metadata.release()
                        if trace is not None:
                            trace.open_seconds += sim._now - bracket
                    bracket = sim._now
                    yield read_link.transfer(disk_bytes, link_tag)
                    if trace is not None:
                        trace.read_seconds += sim._now - bracket
                    if batch_span is not None:
                        detail.add_complete(
                            "storage-read", "transfer", lane, bracket,
                            sim._now, parent=batch_span.id,
                            args={"bytes": disk_bytes})
                    page_cache.insert(chunk_key, disk_bytes)
                yield Timeout(sim, k * overhead_ps)
                if decompress_bw is not None:
                    bracket = sim._now
                    seconds = k * stored_bytes_ps_raw / decompress_bw
                    machine.cpu_busy_seconds += seconds
                    yield cores.acquire()
                    try:
                        yield Timeout(sim, seconds)
                    finally:
                        cores.release()
                    if trace is not None:
                        trace.decode_seconds += sim._now - bracket
                if deser_ps is not None:
                    bracket = sim._now
                    seconds = k * deser_ps
                    machine.cpu_busy_seconds += seconds
                    yield cores.acquire()
                    try:
                        yield Timeout(sim, seconds)
                    finally:
                        cores.release()
                    if trace is not None:
                        trace.decode_seconds += sim._now - bracket
                for holds_gil, cpu_seconds in online_charges:
                    bracket = sim._now
                    if holds_gil:
                        yield gil.acquire()
                        try:
                            waiters = len(gil_waiters)
                            if waiters > gil_max_waiters:
                                waiters = gil_max_waiters
                            per_unit = cpu_seconds + waiters * gil_convoy
                            yield Timeout(sim, k * per_unit)
                        finally:
                            gil.release()
                        if trace is not None:
                            trace.gil_seconds += sim._now - bracket
                    else:
                        machine.cpu_busy_seconds += k * cpu_seconds
                        yield cores.acquire()
                        try:
                            yield Timeout(sim, k * cpu_seconds)
                        finally:
                            cores.release()
                        if trace is not None:
                            trace.cpu_seconds += sim._now - bracket
                if shuffle_buffer:
                    bracket = sim._now
                    seconds = k * shuffle_ps
                    machine.cpu_busy_seconds += seconds
                    yield cores.acquire()
                    try:
                        yield Timeout(sim, seconds)
                    finally:
                        cores.release()
                    if trace is not None:
                        trace.shuffle_seconds += sim._now - bracket
                if populate_app_cache:
                    bracket = sim._now
                    yield memory_link.transfer(k * app_tensor_bytes_ps)
                    if trace is not None:
                        trace.memory_seconds += sim._now - bracket
                bracket = sim._now
                yield dispatch.acquire()
                try:
                    waiters = len(dispatch_waiters)
                    if waiters > dispatch_max_waiters:
                        waiters = dispatch_max_waiters
                    per_unit = dispatch_cost + waiters * dispatch_convoy
                    yield Timeout(sim, k * per_unit)
                finally:
                    dispatch.release()
                if trace is not None:
                    trace.dispatch_seconds += sim._now - bracket
                if batch_span is not None:
                    detail.finish(batch_span, sim._now)

        processes = [sim.process(worker(jobs), name=f"worker-{i}")
                     for i, jobs in enumerate(job_plans)]
        yield all_of(sim, processes)
        if epoch_span is not None:
            tracer.finish(epoch_span, sim.now)
        lookups = counters["hits"] + counters["misses"]
        epoch_result = EpochResult(
            epoch=epoch,
            duration=sim.now - start,
            samples=count,
            bytes_from_storage=counters["storage"],
            bytes_from_cache=counters["cache"],
            cache_hit_rate=counters["hits"] / lookups if lookups else 0.0,
            served_from_app_cache=from_app_cache,
            trace=trace,
        )
        if trace is not None:
            trace.duration = epoch_result.duration
            trace.bytes_from_storage = epoch_result.bytes_from_storage
            trace.bytes_from_cache = epoch_result.bytes_from_cache
            trace.cache_hit_rate = epoch_result.cache_hit_rate
        return epoch_result

    # -- helpers ------------------------------------------------------------

    def _open_latency(self) -> float:
        return self.environment.storage.pipeline_open_latency

    @staticmethod
    def _opens_per_sample(rep: Representation, count: int) -> float:
        """File opens charged per sample for this representation.

        Materialised record shards (a handful of files) are free to open;
        file-per-sample sources pay one open each; container sources
        (NILM's 744 HDF5 files) pay a pro-rated fraction.
        """
        if rep.n_files is None:
            return 0.0
        opens = rep.n_files / count
        return opens if opens > 1e-3 else 0.0

    @staticmethod
    def _app_cache_tensor_bytes(plan: SplitPlan) -> float:
        """In-memory tensor size cached by application-level caching.

        ``tf.data.Dataset.cache`` sits after the last deterministic step,
        so the cached element is the furthest materialisable
        representation, held uncompressed in RAM.
        """
        pipeline = plan.pipeline
        return pipeline.representations[
            pipeline.max_offline_index()].bytes_per_sample

