"""The tf.data-style public API: :class:`PipelineDataset`.

Build lazily, iterate eagerly::

    dataset = (PipelineDataset.from_record_shards(paths)
               .map(decode, num_parallel_calls=8)
               .cache()
               .shuffle(buffer_size=1024, seed=7)
               .batch(32)
               .prefetch(2))
    for batch in dataset:
        ...

Every transformation returns a new dataset sharing nothing mutable, so
datasets are safe to re-iterate (each iteration re-executes the graph,
except across ``cache()``, which replays from memory like
``tf.data.Dataset.cache``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.pipeline import nodes as n
from repro.pipeline.runtime import GraphExecutor


class PipelineDataset:
    """A lazy, composable dataset pipeline."""

    def __init__(self, sink: n.Node):
        self._sink = sink
        self._executor: Optional[GraphExecutor] = None

    # -- sources -----------------------------------------------------------

    @classmethod
    def from_generator(cls, factory: Callable[[], Iterable[Any]],
                       length_hint: Optional[int] = None) -> "PipelineDataset":
        """Dataset from a factory returning a fresh iterable per epoch."""
        return cls(n.SourceNode(parent=None, factory=factory,
                                length_hint=length_hint))

    @classmethod
    def from_items(cls, items: Sequence[Any]) -> "PipelineDataset":
        """Dataset over an in-memory sequence."""
        materialised = list(items)
        return cls.from_generator(lambda: iter(materialised),
                                  length_hint=len(materialised))

    @classmethod
    def from_record_shards(cls, paths: Sequence[str]) -> "PipelineDataset":
        """Dataset of raw record payloads from framed shard files."""
        from repro.pipeline.io import iter_shard_records
        shard_paths = [str(path) for path in paths]
        return cls.from_generator(lambda: iter_shard_records(shard_paths))

    # -- transformations ---------------------------------------------------

    def map(self, fn: Callable[[Any], Any], num_parallel_calls: int = 1,
            name: str = "map") -> "PipelineDataset":
        """Apply ``fn`` per element, optionally on worker threads."""
        return PipelineDataset(n.MapNode(
            parent=self._sink, fn=fn,
            num_parallel_calls=num_parallel_calls, name=name))

    def cache(self, capacity_bytes: Optional[float] = None
              ) -> "PipelineDataset":
        """Application-level caching (``tf.data.Dataset.cache``).

        The first full iteration materialises elements in memory; later
        iterations replay them without upstream work.  ``capacity_bytes``
        enforces the RAM budget -- exceeding it raises, mirroring the
        paper's failed app-cache runs for CV/NLP last strategies.
        """
        return PipelineDataset(n.CacheNode(parent=self._sink,
                                           capacity_bytes=capacity_bytes))

    def shuffle(self, buffer_size: int, seed: int = 0) -> "PipelineDataset":
        """Buffer-based with-replacement shuffling (paper Sec. 4.5)."""
        return PipelineDataset(n.ShuffleNode(parent=self._sink,
                                             buffer_size=buffer_size,
                                             seed=seed))

    def batch(self, batch_size: int,
              drop_remainder: bool = False) -> "PipelineDataset":
        """Group consecutive elements into lists."""
        return PipelineDataset(n.BatchNode(parent=self._sink,
                                           batch_size=batch_size,
                                           drop_remainder=drop_remainder))

    def prefetch(self, buffer_size: int = 1) -> "PipelineDataset":
        """Overlap production and consumption via a background thread."""
        return PipelineDataset(n.PrefetchNode(parent=self._sink,
                                              buffer_size=buffer_size))

    # -- execution ----------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        if self._executor is None:
            self._executor = GraphExecutor(self._sink)
        return self._executor.iterator()

    def materialize(self) -> list[Any]:
        """Run the pipeline once and collect every element."""
        return list(self)

    def count(self) -> int:
        """Run the pipeline once, touching every element (the paper's
        simulated training loop accesses each tensor's shape)."""
        total = 0
        for _ in self:
            total += 1
        return total
