"""Dataset-graph nodes.

Each node is a small declarative record; execution lives in
:mod:`repro.pipeline.runtime`.  Nodes form a linked list from sink to
source (every node holds its ``parent``), matching how tf.data composes
transformations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.errors import PipelineError


@dataclass(frozen=True)
class Node:
    """Base class for dataset-graph nodes."""

    parent: Optional["Node"]

    def validate(self) -> None:
        """Hook for construction-time checks."""

    def chain(self) -> list["Node"]:
        """Nodes from source to this node."""
        nodes: list[Node] = []
        node: Optional[Node] = self
        while node is not None:
            nodes.append(node)
            node = node.parent
        return list(reversed(nodes))


@dataclass(frozen=True)
class SourceNode(Node):
    """Produces samples from a factory returning a fresh iterable."""

    factory: Callable[[], Iterable[Any]]
    length_hint: Optional[int] = None

    def validate(self) -> None:
        if self.parent is not None:
            raise PipelineError("source nodes cannot have parents")


@dataclass(frozen=True)
class MapNode(Node):
    """Applies ``fn`` to every sample, optionally on worker threads."""

    fn: Callable[[Any], Any] = None  # type: ignore[assignment]
    num_parallel_calls: int = 1
    name: str = "map"

    def validate(self) -> None:
        if self.fn is None:
            raise PipelineError(f"map node {self.name!r} needs a function")
        if self.num_parallel_calls < 1:
            raise PipelineError(
                f"map node {self.name!r}: num_parallel_calls must be >= 1")


@dataclass(frozen=True)
class CacheNode(Node):
    """Application-level cache: stores elements in RAM after pass one."""

    capacity_bytes: Optional[float] = None


@dataclass(frozen=True)
class ShuffleNode(Node):
    """Buffer-based with-replacement shuffling (paper Sec. 4.5)."""

    buffer_size: int = 0
    seed: int = 0

    def validate(self) -> None:
        if self.buffer_size < 1:
            raise PipelineError("shuffle buffer must hold at least 1 sample")


@dataclass(frozen=True)
class BatchNode(Node):
    """Groups consecutive samples into lists of ``batch_size``."""

    batch_size: int = 1
    drop_remainder: bool = False

    def validate(self) -> None:
        if self.batch_size < 1:
            raise PipelineError("batch size must be >= 1")


@dataclass(frozen=True)
class PrefetchNode(Node):
    """Decouples producer and consumer with a bounded background queue."""

    buffer_size: int = 1

    def validate(self) -> None:
        if self.buffer_size < 1:
            raise PipelineError("prefetch buffer must be >= 1")
