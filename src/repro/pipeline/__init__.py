"""A tf.data-style dataset runtime with real threaded execution.

:class:`repro.pipeline.dataset.PipelineDataset` mirrors the slice of the
``tf.data`` API the paper's PRESTO relies on: build a lazy graph with
``from_generator`` / ``from_record_shards``, chain ``map`` (optionally
parallel), ``cache``, ``shuffle``, ``batch`` and ``prefetch``, then
iterate.  Iteration spins up real worker threads, so GIL effects on
Python-heavy map functions are genuine, not simulated.
"""

from repro.pipeline.dataset import PipelineDataset
from repro.pipeline.io import read_shards, write_shards

__all__ = ["PipelineDataset", "read_shards", "write_shards"]
