"""Shard files on the local filesystem.

The in-process backend materialises offline representations exactly like
the paper does: payloads framed into record shards (one shard per reader
thread), optionally compressed whole-shard.  Readers stream the shards
back and yield raw payloads.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import CodecError
from repro.formats.compression import get_codec
from repro.formats.record import read_records, write_record


def write_shards(payloads: Iterable[bytes], directory: str | Path,
                 n_shards: int, prefix: str = "shard",
                 compression: Optional[str] = None) -> list[Path]:
    """Round-robin payloads into ``n_shards`` record files.

    Returns the shard paths.  With ``compression``, each shard is
    compressed as one stream after framing (like ``TFRecordOptions``
    compression).
    """
    if n_shards < 1:
        raise CodecError("need at least one shard")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    codec = get_codec(compression)
    suffix = f".{codec.name.lower()}" if codec else ""
    paths = [directory / f"{prefix}-{index:05d}.records{suffix}"
             for index in range(n_shards)]
    if codec is None:
        handles = [open(path, "wb") for path in paths]
        try:
            for index, payload in enumerate(payloads):
                write_record(handles[index % n_shards], payload)
        finally:
            for handle in handles:
                handle.close()
        return paths
    # Compressed shards: frame in memory per shard, then compress once.
    import io as _io
    buffers = [_io.BytesIO() for _ in paths]
    for index, payload in enumerate(payloads):
        write_record(buffers[index % n_shards], payload)
    for path, buffer in zip(paths, buffers):
        path.write_bytes(codec.compress(buffer.getvalue()))
    return paths


def iter_shard_records(paths: Sequence[str | Path]) -> Iterator[bytes]:
    """Stream payloads from shards sequentially, shard by shard."""
    for path in paths:
        path = Path(path)
        compression = _compression_from_suffix(path)
        if compression is None:
            with open(path, "rb") as handle:
                yield from read_records(handle)
        else:
            codec = get_codec(compression)
            import io as _io
            raw = codec.decompress(path.read_bytes())
            yield from read_records(_io.BytesIO(raw))


def read_shards(paths: Sequence[str | Path]) -> list[bytes]:
    """Materialise every payload from the given shards."""
    return list(iter_shard_records(paths))


def shard_sizes(paths: Sequence[str | Path]) -> int:
    """Total on-disk footprint of the shards in bytes."""
    return sum(os.path.getsize(path) for path in paths)


def _compression_from_suffix(path: Path) -> Optional[str]:
    if path.suffix == ".gzip":
        return "GZIP"
    if path.suffix == ".zlib":
        return "ZLIB"
    return None
