"""Executes dataset graphs with real threads.

The executor walks the node chain source-to-sink and wraps each stage in
an iterator:

* ``MapNode`` with ``num_parallel_calls > 1`` keeps a bounded window of
  futures in a thread pool, preserving input order (like tf.data's
  deterministic parallel map);
* ``CacheNode`` materialises elements on the first pass and serves every
  later pass from memory -- with an optional byte budget that raises
  :class:`MemoryError`-like failure the same way the paper's app-cache
  runs "failed to run" when the dataset outgrew RAM;
* ``ShuffleNode`` implements the with-replacement buffer strategy the
  paper describes (fill a buffer, emit a random slot, refill from the
  stream);
* ``PrefetchNode`` runs the upstream iterator on a daemon thread feeding
  a bounded queue.
"""

from __future__ import annotations

import queue
import random
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterator

import numpy as np

from repro.errors import PipelineError
from repro.pipeline import nodes as n


class AppCacheOverflowError(PipelineError):
    """The application-level cache exceeded its byte budget."""


def _element_nbytes(element: Any) -> int:
    """Approximate in-memory footprint of a pipeline element."""
    if isinstance(element, np.ndarray):
        return element.nbytes
    if isinstance(element, (bytes, bytearray)):
        return len(element)
    if isinstance(element, str):
        return len(element.encode("utf-8", errors="ignore"))
    if isinstance(element, (list, tuple)):
        return sum(_element_nbytes(item) for item in element)
    return sys.getsizeof(element)


class _CacheState:
    """Shared cache storage surviving across iterations of one dataset."""

    def __init__(self):
        self.filled = False
        self.elements: list[Any] = []
        self.nbytes = 0


def _iterate_source(node: n.SourceNode) -> Iterator[Any]:
    yield from node.factory()


def _iterate_map(node: n.MapNode, upstream: Iterator[Any]) -> Iterator[Any]:
    if node.num_parallel_calls == 1:
        for element in upstream:
            yield node.fn(element)
        return
    # Deterministic parallel map: submit up to N futures ahead, consume
    # in order.  Real threads => real GIL behaviour for Python-bound fns.
    with ThreadPoolExecutor(max_workers=node.num_parallel_calls,
                            thread_name_prefix=f"map-{node.name}") as pool:
        window: list = []
        exhausted = False
        iterator = iter(upstream)
        while True:
            while not exhausted and len(window) < node.num_parallel_calls:
                try:
                    element = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                window.append(pool.submit(node.fn, element))
            if not window:
                return
            yield window.pop(0).result()


def _iterate_cache(node: n.CacheNode, upstream: Iterator[Any],
                   state: _CacheState) -> Iterator[Any]:
    if state.filled:
        yield from state.elements
        return
    state.elements.clear()
    state.nbytes = 0
    for element in upstream:
        state.nbytes += _element_nbytes(element)
        if (node.capacity_bytes is not None
                and state.nbytes > node.capacity_bytes):
            state.elements.clear()
            raise AppCacheOverflowError(
                f"application cache overflow: {state.nbytes} bytes exceed "
                f"budget {node.capacity_bytes}")
        state.elements.append(element)
        yield element
    state.filled = True


def _iterate_shuffle(node: n.ShuffleNode,
                     upstream: Iterator[Any]) -> Iterator[Any]:
    rng = random.Random(node.seed)
    buffer: list[Any] = []
    for element in upstream:
        if len(buffer) < node.buffer_size:
            buffer.append(element)
            continue
        index = rng.randrange(len(buffer))
        yield buffer[index]
        buffer[index] = element
    rng.shuffle(buffer)
    yield from buffer


def _iterate_batch(node: n.BatchNode, upstream: Iterator[Any]
                   ) -> Iterator[list[Any]]:
    batch: list[Any] = []
    for element in upstream:
        batch.append(element)
        if len(batch) == node.batch_size:
            yield batch
            batch = []
    if batch and not node.drop_remainder:
        yield batch


_SENTINEL = object()


def _iterate_prefetch(node: n.PrefetchNode,
                      upstream: Iterator[Any]) -> Iterator[Any]:
    channel: queue.Queue = queue.Queue(maxsize=node.buffer_size)
    failure: list[BaseException] = []

    def producer() -> None:
        try:
            for element in upstream:
                channel.put(element)
        except BaseException as exc:  # propagate to the consumer
            failure.append(exc)
        finally:
            channel.put(_SENTINEL)

    thread = threading.Thread(target=producer, daemon=True,
                              name="prefetch-producer")
    thread.start()
    while True:
        element = channel.get()
        if element is _SENTINEL:
            thread.join()
            if failure:
                raise failure[0]
            return
        yield element


class GraphExecutor:
    """Builds per-iteration iterators for a node chain.

    Cache state is owned by the executor (it must survive across
    iterations: pass one fills, pass two serves from memory).
    """

    def __init__(self, sink: n.Node):
        self.sink = sink
        self._cache_states: dict[int, _CacheState] = {}
        for node in sink.chain():
            node.validate()
            if isinstance(node, n.CacheNode):
                self._cache_states[id(node)] = _CacheState()

    def cache_state(self, node: n.CacheNode) -> _CacheState:
        return self._cache_states[id(node)]

    def iterator(self) -> Iterator[Any]:
        iterator: Iterator[Any] | None = None
        for node in self.sink.chain():
            if isinstance(node, n.SourceNode):
                iterator = _iterate_source(node)
            elif isinstance(node, n.MapNode):
                iterator = _iterate_map(node, iterator)
            elif isinstance(node, n.CacheNode):
                iterator = _iterate_cache(node, iterator,
                                          self._cache_states[id(node)])
            elif isinstance(node, n.ShuffleNode):
                iterator = _iterate_shuffle(node, iterator)
            elif isinstance(node, n.BatchNode):
                iterator = _iterate_batch(node, iterator)
            elif isinstance(node, n.PrefetchNode):
                iterator = _iterate_prefetch(node, iterator)
            else:
                raise PipelineError(f"unknown node type {type(node).__name__}")
        if iterator is None:
            raise PipelineError("empty dataset graph")
        return iterator
