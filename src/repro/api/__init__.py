"""The declarative experiment API: one spec, one facade, one artifact.

The paper's methodology is "run many strategy x pipeline x hardware
configurations and compare them"; this package makes that a data
problem instead of a flag-wrangling problem:

* :class:`~repro.api.spec.ExperimentSpec` -- a serializable dataclass
  tree describing one experiment (workload kind, pipelines, run knobs,
  environment, executor/cache settings, workload sub-specs) with
  lossless ``to_dict``/``from_dict``, JSON/YAML file loading and
  content-addressed fingerprinting that reuses the exec layer's
  canonical descriptions.
* :class:`~repro.api.session.Session` -- the plan -> run -> report
  facade: ``plan()`` resolves a spec into an inspectable
  :class:`~repro.api.plan.ExperimentPlan`, ``run()`` dispatches to the
  existing engines and returns a
  :class:`~repro.api.artifact.RunArtifact` (frame + report +
  events_processed + provenance) for every workload.

Quickstart::

    from repro.api import ExperimentSpec, Session, load_spec

    spec = ExperimentSpec(kind="diagnose", pipelines=("MP3",))
    artifact = Session().run(spec)
    print(artifact.report)

    spec = load_spec("examples/experiments/sweep_cv.json")
    print(Session().plan(spec).describe())

CLI surface: ``presto run experiment.json`` and ``presto plan
experiment.json``; every classic subcommand is a thin shim that builds
an ExperimentSpec and calls the Session.
"""

from repro.api.artifact import Provenance, RunArtifact, comparison_frame
from repro.api.loader import dump_spec, load_spec, parse_simple_yaml
from repro.api.plan import ExperimentPlan, PlannedPipeline, build_plan
from repro.api.resolve import (resolve_arrival, resolve_backend_name,
                               resolve_pipeline, resolve_pipeline_name,
                               resolve_policy, resolve_storage,
                               resolve_strategy_name, resolve_trace)
from repro.api.session import Session
from repro.api.spec import (SPEC_SCHEMA_VERSION, WORKLOAD_KINDS,
                            ControlSpec, DiagnoseSpec, EnvironmentSpec,
                            ExecSpec, ExperimentSpec, FanoutSpec,
                            FaultsSpec, RunSpec, ServeSpec, StreamSpec,
                            TuneSpec)
from repro.errors import SpecError

__all__ = [
    "ControlSpec",
    "DiagnoseSpec",
    "EnvironmentSpec",
    "ExecSpec",
    "ExperimentPlan",
    "ExperimentSpec",
    "FanoutSpec",
    "FaultsSpec",
    "PlannedPipeline",
    "Provenance",
    "RunArtifact",
    "RunSpec",
    "SPEC_SCHEMA_VERSION",
    "ServeSpec",
    "Session",
    "SpecError",
    "StreamSpec",
    "TuneSpec",
    "WORKLOAD_KINDS",
    "build_plan",
    "comparison_frame",
    "dump_spec",
    "load_spec",
    "parse_simple_yaml",
    "resolve_arrival",
    "resolve_backend_name",
    "resolve_pipeline",
    "resolve_pipeline_name",
    "resolve_policy",
    "resolve_storage",
    "resolve_strategy_name",
    "resolve_trace",
]
