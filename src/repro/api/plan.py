"""Inspectable execution plans: what a spec will do before it does it.

``Session.plan(spec)`` resolves an :class:`ExperimentSpec` against the
pipeline registry without executing anything and returns an
:class:`ExperimentPlan`: the resolved pipelines with their strategy
counts, the number of jobs the workload will submit, and a rough
kernel-event-volume estimate (the deterministic cost currency the perf
suite tracks).  ``presto plan experiment.json`` renders it -- the cheap
pre-flight for expensive studies, and the CI gate that keeps every
shipped example spec valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import calibration as cal
from repro.api.spec import ExperimentSpec

#: Rough kernel events per simulated sample batch (grant/timeout pairs
#: for the lock and core holds -- see ROADMAP "event-count reduction").
_EVENTS_PER_BATCH = 8


@dataclass(frozen=True)
class PlannedPipeline:
    """One resolved pipeline: its scale and how many strategies run."""

    name: str
    sample_count: int
    strategies: int

    def describe(self) -> str:
        return (f"{self.name:24s} {self.sample_count:>11,} samples  "
                f"{self.strategies} strategies")


@dataclass
class ExperimentPlan:
    """The resolved, not-yet-executed view of one experiment."""

    spec: ExperimentSpec
    fingerprint: str
    pipelines: List[PlannedPipeline] = field(default_factory=list)
    #: Executor submissions of the main phase: profiling jobs, tenant
    #: jobs or policy runs (exact; matched against execution by tests).
    job_count: int = 0
    #: Upper bound on diagnose verification re-runs (the doctor only
    #: re-runs verifiable, per-strategy-deduplicated rewrites, which
    #: cannot be known before profiling).
    verify_jobs: int = 0
    #: Order-of-magnitude kernel event volume (0: nothing simulated).
    estimated_events: int = 0

    @property
    def kind(self) -> str:
        return self.spec.kind

    def run(self, session=None):
        """Execute this plan; returns the :class:`RunArtifact`."""
        if session is None:
            from repro.api.session import Session
            session = Session()
        return session.run(self.spec)

    def describe(self) -> str:
        """The ``presto plan`` report body."""
        spec = self.spec
        lines = [f"experiment: {spec.kind}"
                 + (f" ({spec.name})" if spec.name else ""),
                 f"fingerprint: {self.fingerprint}",
                 f"backend: {spec.environment.backend}, "
                 f"storage {spec.environment.storage}"]
        if spec.kind in ("serve", "control"):
            sub = spec.serve if spec.kind == "serve" else spec.control
            lines.append(
                f"trace: {sub.trace}(seed {spec.seed}), "
                f"{sub.tenants} tenants, policy {sub.policy}, "
                f"slots {sub.slots}")
            if spec.kind == "control":
                control = spec.control
                features = [f"retry x{control.max_attempts}"]
                if control.fault_rate:
                    features.append(f"faults {control.fault_rate:g}")
                if control.admission_limit is not None:
                    features.append(
                        f"admission {control.admission_limit}/tenant")
                if control.preempt:
                    features.append("preemption")
                if control.autoscale:
                    features.append(
                        f"autoscale <= {control.max_slots or 2 * control.slots}"
                        f" slots")
                lines.append(f"control: {', '.join(features)}")
            lines.append("pipeline mix:")
        elif spec.kind == "stream":
            stream = spec.stream
            lines.append(
                f"arrivals: {stream.arrival}(seed {spec.seed}) "
                f"@{stream.rate:g}/s, {stream.tenants} tenant streams, "
                f"{stream.requests} requests x batch {stream.batch}, "
                f"workers {stream.workers}")
            lines.append("pipeline mix:")
        else:
            lines.append(f"pipelines: {len(self.pipelines)}")
        for pipeline in self.pipelines:
            lines.append(f"  {pipeline.describe()}")
        label = {"serve": "tenant jobs", "control": "tenant jobs",
                 "stream": "tenant streams",
                 "tune": "profiling jobs (after "
                 "analytic screening)"}.get(spec.kind, "profiling jobs")
        lines.append(f"{label}: {self.job_count}")
        if self.verify_jobs:
            lines.append(f"verification re-runs: up to {self.verify_jobs} "
                         f"(top verifiable rewrites)")
        if self.estimated_events:
            lines.append(
                f"estimated kernel events: ~{self.estimated_events:,}")
        else:
            lines.append("estimated kernel events: none (not simulated)")
        return "\n".join(lines)


def build_plan(spec: ExperimentSpec) -> ExperimentPlan:
    """Resolve ``spec`` into an :class:`ExperimentPlan` (no execution)."""
    from repro.api.resolve import resolve_pipeline
    from repro.exec.engine import strategies_for

    spec.validate()
    config = spec.run.to_run_config()
    planned: list[PlannedPipeline] = []
    for name in spec.pipeline_names():
        pipeline = resolve_pipeline(name)
        count = (spec.diagnose.sample_count
                 if spec.kind == "diagnose" and spec.diagnose.sample_count
                 else pipeline.sample_count)
        planned.append(PlannedPipeline(
            name=name, sample_count=count,
            strategies=len(strategies_for(pipeline, config))))

    epochs = config.epochs
    simulated = spec.environment.backend == "simulated"
    verify_jobs = (spec.diagnose.verify_top
                   if spec.kind == "diagnose" else 0)
    if spec.kind in ("serve", "control"):
        sub = spec.serve if spec.kind == "serve" else spec.control
        job_count = sub.tenants
        policies = _policy_count(sub.policy)
        # Tenants each run (offline + epochs) phases of ~max_jobs batches.
        events = (sub.tenants * (epochs + 1)
                  * cal.MAX_JOBS_PER_RUN * _EVENTS_PER_BATCH * policies)
        if spec.kind == "control" and spec.control.fault_rate:
            # Crashed attempts re-run partial work; scale by the worst
            # case of every faulty job burning its full retry budget.
            events *= 1 + spec.control.fault_rate * \
                (spec.control.max_attempts - 1)
    elif spec.kind == "stream":
        stream = spec.stream
        job_count = stream.tenants
        # Each request batch walks the epoch body's resource sequence.
        events = (stream.tenants * stream.requests * _EVENTS_PER_BATCH
                  if simulated else 0)
    elif spec.kind == "fanout":
        runs = (len(spec.fanout.trainers) + 1 if spec.fanout.simulate
                else 1)
        trainer_total = (sum(spec.fanout.trainers) + 1
                         if spec.fanout.simulate else 1)
        job_count = runs
        events = (trainer_total * epochs * cal.MAX_JOBS_PER_RUN
                  * _EVENTS_PER_BATCH if simulated else 0)
    elif spec.kind == "tune":
        from repro.backends.analytic import AnalyticModel
        from repro.core.autotune import screen_strategies
        from repro.core.strategy import enumerate_strategies
        tune = spec.tune
        pipeline = resolve_pipeline(spec.pipelines[0])
        candidates = enumerate_strategies(
            pipeline, threads=tune.threads,
            compressions=tune.compressions,
            cache_modes=tune.cache_modes, epochs=epochs)
        # Run the real (closed-form, cheap) analytic screen so the
        # planned job count matches what AutoTuner will submit exactly,
        # split-point-coverage guarantee included.
        model = AnalyticModel(spec.environment.to_environment())
        job_count = len(screen_strategies(candidates, tune.screen_keep,
                                          model))
        events = (job_count * (epochs + 1) * cal.MAX_JOBS_PER_RUN
                  * _EVENTS_PER_BATCH if simulated else 0)
    else:  # profile / sweep / diagnose: one job per legal strategy
        job_count = sum(pipeline.strategies for pipeline in planned)
        events = ((job_count + verify_jobs) * (epochs + 1)
                  * cal.MAX_JOBS_PER_RUN * _EVENTS_PER_BATCH
                  if simulated else 0)
    return ExperimentPlan(spec=spec, fingerprint=spec.fingerprint(),
                          pipelines=planned, job_count=job_count,
                          verify_jobs=verify_jobs,
                          estimated_events=int(events))


def _policy_count(policy: str) -> int:
    if policy != "all":
        return 1
    from repro.serve.policies import POLICY_NAMES
    return len(POLICY_NAMES)
