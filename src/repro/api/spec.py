"""The declarative experiment specification.

An :class:`ExperimentSpec` is the single serializable description of
"run this study": one workload kind (``profile | sweep | tune |
diagnose | serve | control | fanout | stream``), the pipelines it
touches, the run knobs
(:class:`RunSpec`), the hardware (:class:`EnvironmentSpec`), executor
and profile-cache settings (:class:`ExecSpec`) and the workload-specific
sub-specs.  Everything the four historical entry points
(StrategyProfiler/SweepEngine, AutoTuner, BottleneckDoctor,
PreprocessingService) take as constructor arguments and ad-hoc CLI
flags is expressible -- and therefore saveable, diffable and
replayable -- as one spec.

Round-tripping is lossless: ``ExperimentSpec.from_dict(spec.to_dict())
== spec`` for every workload kind (pinned by a hypothesis property
test).  ``from_dict`` validates key names per section and
:meth:`ExperimentSpec.validate` resolves every registry name through
:mod:`repro.api.resolve`, so errors are actionable ("unknown pipeline
'CV3'; did you mean 'CV'? valid pipelines: ...") rather than
tracebacks.

Fingerprinting reuses :mod:`repro.exec.fingerprint`: the spec
fingerprint digests the *resolved* canonical descriptions
(``describe_pipeline`` / ``describe_config`` /
``describe_environment``) that also key the
:class:`~repro.exec.cache.ProfileCache`, so every cache entry a run
produces is a pure function of the spec that requested it, and two
spellings of the same experiment (CLI flags vs JSON file) share one
fingerprint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Optional

from repro.api.resolve import (resolve_arrival, resolve_backend_name,
                               resolve_pipeline, resolve_pipeline_name,
                               resolve_policy, resolve_storage,
                               resolve_strategy_name, resolve_trace)
from repro.errors import SpecError

#: Workload kinds understood by the Session facade.
WORKLOAD_KINDS = ("profile", "sweep", "tune", "diagnose", "serve",
                  "control", "fanout", "stream")

#: Workloads that operate on exactly one pipeline.
SINGLE_PIPELINE_KINDS = ("profile", "tune", "diagnose", "fanout")

#: Bump when the spec schema changes so fingerprints of old spec files
#: cannot collide with differently-interpreted new ones.
SPEC_SCHEMA_VERSION = 1

_COMPRESSIONS = (None, "GZIP", "ZLIB")
_CACHE_MODES = ("none", "system", "application")
_TIE_BREAKS = ("arrival", "tenant")


def _require_keys(cls, payload: dict, section: str) -> None:
    """Reject unknown keys with the list of valid ones."""
    if not isinstance(payload, dict):
        raise SpecError(
            f"spec section {section!r} must be a mapping, "
            f"got {type(payload).__name__}")
    valid = {spec_field.name for spec_field in fields(cls)}
    unknown = sorted(set(payload) - valid)
    if unknown:
        raise SpecError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in spec "
            f"section {section!r}; valid keys: {', '.join(sorted(valid))}")


def _as_tuple(value) -> tuple:
    """Coerce JSON lists (and scalars) into tuples for frozen specs."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class RunSpec:
    """Per-run strategy knobs; maps 1:1 onto
    :class:`~repro.backends.base.RunConfig`."""

    threads: int = 8
    epochs: int = 1
    compression: Optional[str] = None
    cache_mode: str = "none"
    shuffle_buffer: int = 0

    def validate(self) -> None:
        _check(isinstance(self.threads, int) and self.threads >= 1,
               f"run.threads must be a positive integer, "
               f"got {self.threads!r}")
        _check(isinstance(self.epochs, int) and self.epochs >= 1,
               f"run.epochs must be a positive integer, got {self.epochs!r}")
        _check(self.compression in _COMPRESSIONS,
               f"run.compression must be one of {_COMPRESSIONS}, "
               f"got {self.compression!r}")
        _check(self.cache_mode in _CACHE_MODES,
               f"run.cache_mode must be one of {_CACHE_MODES}, "
               f"got {self.cache_mode!r}")
        _check(isinstance(self.shuffle_buffer, int)
               and self.shuffle_buffer >= 0,
               f"run.shuffle_buffer must be >= 0, "
               f"got {self.shuffle_buffer!r}")

    def to_run_config(self):
        """The equivalent :class:`~repro.backends.base.RunConfig`."""
        from repro.backends.base import RunConfig
        return RunConfig(threads=self.threads, epochs=self.epochs,
                         compression=self.compression,
                         cache_mode=self.cache_mode,
                         shuffle_buffer=self.shuffle_buffer)


@dataclass(frozen=True)
class EnvironmentSpec:
    """Hardware selection: storage device plus execution backend."""

    storage: str = "ceph-hdd"
    backend: str = "simulated"

    def validate(self) -> None:
        resolve_storage(self.storage)
        resolve_backend_name(self.backend)

    def to_environment(self):
        """The equivalent :class:`~repro.backends.base.Environment`."""
        from repro.backends.base import Environment
        return Environment(storage=resolve_storage(self.storage))

    def to_backend(self):
        """Instantiate the execution backend on this environment."""
        environment = self.to_environment()
        if self.backend == "inprocess":
            from repro.backends import InProcessBackend
            return InProcessBackend(environment=environment)
        from repro.backends import SimulatedBackend
        return SimulatedBackend(environment)


@dataclass(frozen=True)
class ExecSpec:
    """Sweep-engine settings: worker fan-out, memoization, progress."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    progress: bool = False

    def validate(self) -> None:
        _check(isinstance(self.jobs, int) and self.jobs >= 1,
               f"executor.jobs must be a positive integer, got {self.jobs!r}")
        _check(self.cache_dir is None or isinstance(self.cache_dir, str),
               f"executor.cache_dir must be a directory path or null, "
               f"got {self.cache_dir!r}")


@dataclass(frozen=True)
class TuneSpec:
    """Auto-tuning grid and objective (``kind: tune``)."""

    preprocessing_weight: float = 0.0
    storage_weight: float = 0.0
    throughput_weight: float = 1.0
    threads: tuple = (8,)
    compressions: tuple = (None, "GZIP", "ZLIB")
    cache_modes: tuple = ("none",)
    screen_keep: float = 0.5

    def __post_init__(self):
        object.__setattr__(self, "threads", _as_tuple(self.threads))
        object.__setattr__(self, "compressions",
                           _as_tuple(self.compressions))
        object.__setattr__(self, "cache_modes",
                           _as_tuple(self.cache_modes))

    def validate(self) -> None:
        weights = (self.preprocessing_weight, self.storage_weight,
                   self.throughput_weight)
        _check(all(isinstance(w, (int, float)) and w >= 0 for w in weights),
               f"tune weights must be non-negative numbers, got {weights}")
        _check(any(weights),
               "at least one tune weight must be positive")
        _check(bool(self.threads)
               and all(isinstance(t, int) and t >= 1 for t in self.threads),
               f"tune.threads must be positive integers, "
               f"got {self.threads!r}")
        _check(bool(self.compressions)
               and all(c in _COMPRESSIONS for c in self.compressions),
               f"tune.compressions must be a non-empty subset of "
               f"{_COMPRESSIONS}, got {self.compressions!r}")
        _check(bool(self.cache_modes)
               and all(m in _CACHE_MODES for m in self.cache_modes),
               f"tune.cache_modes entries must be among {_CACHE_MODES}, "
               f"got {self.cache_modes!r}")
        _check(isinstance(self.screen_keep, (int, float))
               and 0.0 < self.screen_keep <= 1.0,
               f"tune.screen_keep must be in (0, 1], "
               f"got {self.screen_keep!r}")

    def to_weights(self):
        from repro.core.analysis import ObjectiveWeights
        return ObjectiveWeights(preprocessing=self.preprocessing_weight,
                                storage=self.storage_weight,
                                throughput=self.throughput_weight)


@dataclass(frozen=True)
class DiagnoseSpec:
    """Bottleneck-doctor options (``kind: diagnose``)."""

    verify_top: int = 0
    sample_count: Optional[int] = None

    def validate(self) -> None:
        _check(isinstance(self.verify_top, int) and self.verify_top >= 0,
               f"diagnose.verify_top must be >= 0, got {self.verify_top!r}")
        _check(self.sample_count is None
               or (isinstance(self.sample_count, int)
                   and self.sample_count >= 1),
               f"diagnose.sample_count must be a positive integer or null, "
               f"got {self.sample_count!r}")


@dataclass(frozen=True)
class ServeSpec:
    """Multi-tenant service scenario (``kind: serve``)."""

    tenants: int = 8
    trace: str = "steady"
    policy: str = "fifo"
    slots: int = 2
    tie_break: str = "arrival"

    def validate(self) -> None:
        _check(isinstance(self.tenants, int) and self.tenants >= 1,
               f"serve.tenants must be a positive integer, "
               f"got {self.tenants!r}")
        _check(isinstance(self.slots, int) and self.slots >= 1,
               f"serve.slots must be a positive integer, got {self.slots!r}")
        resolve_trace(self.trace)
        resolve_policy(self.policy, allow_all=True)
        _check(self.tie_break in _TIE_BREAKS,
               f"serve.tie_break must be one of {_TIE_BREAKS}, "
               f"got {self.tie_break!r}")


@dataclass(frozen=True)
class ControlSpec:
    """Control-plane scenario over the service (``kind: control``).

    The first five fields mirror :class:`ServeSpec` (the underlying
    service run); the rest configure the control features.  With the
    control defaults (no faults, no admission limit, no preemption, no
    autoscaling) a control run reproduces the equivalent serve run
    byte-for-byte -- the differential guarantee ``tests/ctl`` pins.
    """

    tenants: int = 8
    trace: str = "steady"
    policy: str = "fifo"
    slots: int = 2
    tie_break: str = "arrival"
    max_attempts: int = 3
    backoff_base: float = 60.0
    backoff_factor: float = 2.0
    fault_rate: float = 0.0
    admission_limit: Optional[int] = None
    preempt: bool = False
    autoscale: bool = False
    max_slots: int = 0
    autoscale_interval: float = 600.0

    def validate(self) -> None:
        _check(isinstance(self.tenants, int) and self.tenants >= 1,
               f"control.tenants must be a positive integer, "
               f"got {self.tenants!r}")
        _check(isinstance(self.slots, int) and self.slots >= 1,
               f"control.slots must be a positive integer, "
               f"got {self.slots!r}")
        resolve_trace(self.trace)
        resolve_policy(self.policy, allow_all=False)
        _check(self.tie_break in _TIE_BREAKS,
               f"control.tie_break must be one of {_TIE_BREAKS}, "
               f"got {self.tie_break!r}")
        _check(isinstance(self.max_attempts, int) and self.max_attempts >= 1,
               f"control.max_attempts must be a positive integer, "
               f"got {self.max_attempts!r}")
        _check(isinstance(self.backoff_base, (int, float))
               and self.backoff_base >= 0,
               f"control.backoff_base must be >= 0, "
               f"got {self.backoff_base!r}")
        _check(isinstance(self.backoff_factor, (int, float))
               and self.backoff_factor >= 1.0,
               f"control.backoff_factor must be >= 1, "
               f"got {self.backoff_factor!r}")
        _check(isinstance(self.fault_rate, (int, float))
               and 0.0 <= self.fault_rate <= 1.0,
               f"control.fault_rate must be within [0, 1], "
               f"got {self.fault_rate!r}")
        _check(self.admission_limit is None
               or (isinstance(self.admission_limit, int)
                   and self.admission_limit >= 1),
               f"control.admission_limit must be a positive integer or "
               f"null, got {self.admission_limit!r}")
        _check(isinstance(self.max_slots, int)
               and (self.max_slots == 0 or self.max_slots >= self.slots),
               f"control.max_slots must be 0 (auto) or >= slots, "
               f"got {self.max_slots!r}")
        _check(isinstance(self.autoscale_interval, (int, float))
               and self.autoscale_interval > 0,
               f"control.autoscale_interval must be positive, "
               f"got {self.autoscale_interval!r}")

    def retry_policy(self):
        """The equivalent :class:`~repro.ctl.retry.RetryPolicy`."""
        from repro.ctl.retry import RetryPolicy
        return RetryPolicy(max_attempts=self.max_attempts,
                           backoff_base=float(self.backoff_base),
                           backoff_factor=float(self.backoff_factor))

    def autoscale_config(self):
        """The autoscaler bounds, or ``None`` when autoscaling is off."""
        if not self.autoscale:
            return None
        from repro.ctl.dispatcher import AutoscaleConfig
        max_slots = self.max_slots or 2 * self.slots
        return AutoscaleConfig(min_slots=1, max_slots=max_slots,
                               interval=float(self.autoscale_interval))


@dataclass(frozen=True)
class StreamSpec:
    """Streaming inference scenario (``kind: stream``).

    Describes a seeded tenant population of request streams: the
    arrival process shape and rate, requests per tenant, the
    batch-size-vs-latency knob, prefetch width (workers per tenant),
    admission control (queue bound, shed-vs-block on overflow) and the
    per-request latency SLO as a stretch over the uncontended analytic
    batch time (``None``/0 disables deadlines).
    """

    tenants: int = 4
    arrival: str = "poisson"
    rate: float = 1.0
    requests: int = 32
    batch: int = 32
    workers: int = 2
    queue_bound: int = 0
    slo_stretch: Optional[float] = 3.0
    shed: bool = False

    def validate(self) -> None:
        _check(isinstance(self.tenants, int) and self.tenants >= 1,
               f"stream.tenants must be a positive integer, "
               f"got {self.tenants!r}")
        resolve_arrival(self.arrival)
        _check(isinstance(self.rate, (int, float)) and self.rate > 0,
               f"stream.rate must be a positive number, got {self.rate!r}")
        _check(isinstance(self.requests, int) and self.requests >= 1,
               f"stream.requests must be a positive integer, "
               f"got {self.requests!r}")
        _check(isinstance(self.batch, int) and self.batch >= 1,
               f"stream.batch must be a positive integer, "
               f"got {self.batch!r}")
        _check(isinstance(self.workers, int) and self.workers >= 1,
               f"stream.workers must be a positive integer, "
               f"got {self.workers!r}")
        _check(isinstance(self.queue_bound, int) and self.queue_bound >= 0,
               f"stream.queue_bound must be >= 0 (0 = unbounded), "
               f"got {self.queue_bound!r}")
        _check(self.slo_stretch is None
               or (isinstance(self.slo_stretch, (int, float))
                   and self.slo_stretch > 0),
               f"stream.slo_stretch must be a positive number or null, "
               f"got {self.slo_stretch!r}")
        _check(isinstance(self.shed, bool),
               f"stream.shed must be a boolean, got {self.shed!r}")


@dataclass(frozen=True)
class FaultsSpec:
    """Seeded chaos timeline attached to a serve/control/stream run.

    Counts select how many windows of each shape
    (:mod:`repro.faults.plan`) are drawn over ``[0, horizon)`` from the
    namespaced ``chaos-{seed}`` RNG stream; ``severity`` scales window
    lengths and magnitudes.  ``checkpoint_epochs`` and ``shed_slo``
    configure the control plane's graceful-degradation response and are
    only meaningful on ``kind: control``.  All-zero counts (the
    default) disable the engine entirely: the run is byte-identical to
    one with no ``faults:`` section at all.
    """

    stragglers: int = 0
    slowdowns: int = 0
    brownouts: int = 0
    blackouts: int = 0
    crash_windows: int = 0
    severity: float = 0.5
    #: Window-placement horizon in simulated seconds; windows landing
    #: past the run's natural end simply never bite.
    horizon: float = 21600.0
    checkpoint_epochs: int = 0
    shed_slo: bool = False

    @property
    def enabled(self) -> bool:
        return bool(self.stragglers or self.slowdowns or self.brownouts
                    or self.blackouts or self.crash_windows)

    def validate(self) -> None:
        for name in ("stragglers", "slowdowns", "brownouts",
                     "blackouts", "crash_windows"):
            value = getattr(self, name)
            _check(isinstance(value, int) and value >= 0,
                   f"faults.{name} must be an integer >= 0, "
                   f"got {value!r}")
        _check(isinstance(self.severity, (int, float))
               and 0.0 < self.severity <= 1.0,
               f"faults.severity must be in (0, 1], "
               f"got {self.severity!r}")
        _check(isinstance(self.horizon, (int, float)) and self.horizon > 0,
               f"faults.horizon must be positive, got {self.horizon!r}")
        _check(isinstance(self.checkpoint_epochs, int)
               and self.checkpoint_epochs >= 0,
               f"faults.checkpoint_epochs must be an integer >= 0, "
               f"got {self.checkpoint_epochs!r}")
        _check(isinstance(self.shed_slo, bool),
               f"faults.shed_slo must be a boolean, got {self.shed_slo!r}")

    def to_plan(self, seed: int, cores: int = 8):
        """The seeded :class:`~repro.faults.FaultPlan` (None if off)."""
        if not self.enabled:
            return None
        from repro.faults import generate_fault_plan
        return generate_fault_plan(
            seed, float(self.horizon), stragglers=self.stragglers,
            slowdowns=self.slowdowns, brownouts=self.brownouts,
            blackouts=self.blackouts, crash_windows=self.crash_windows,
            severity=float(self.severity), cores=cores)


@dataclass(frozen=True)
class FanoutSpec:
    """Trainer fan-out study (``kind: fanout``)."""

    strategy: Optional[str] = None
    trainers: tuple = (1, 2, 4, 8, 16)
    simulate: bool = False

    def __post_init__(self):
        object.__setattr__(self, "trainers", _as_tuple(self.trainers))

    def validate(self) -> None:
        _check(bool(self.trainers)
               and all(isinstance(t, int) and t >= 1 for t in self.trainers),
               f"fanout.trainers must be positive integers, "
               f"got {self.trainers!r}")
        _check(self.strategy is None or isinstance(self.strategy, str),
               f"fanout.strategy must be a split name or null, "
               f"got {self.strategy!r}")


#: Sub-spec sections of an ExperimentSpec, in serialization order.
_SECTIONS = {
    "run": RunSpec,
    "environment": EnvironmentSpec,
    "executor": ExecSpec,
    "tune": TuneSpec,
    "diagnose": DiagnoseSpec,
    "serve": ServeSpec,
    "control": ControlSpec,
    "stream": StreamSpec,
    "faults": FaultsSpec,
    "fanout": FanoutSpec,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One serializable experiment: workload kind plus every knob.

    ``pipelines`` is the pipeline selection: exactly one name for the
    single-pipeline kinds (profile/tune/diagnose/fanout), any subset for
    ``sweep`` (empty selects the paper's seven), and ignored by
    ``serve`` (the trace generator owns its pipeline mix).  ``seed``
    feeds the serve trace generator and is recorded in provenance for
    every workload.
    """

    kind: str
    pipelines: tuple = ()
    run: RunSpec = RunSpec()
    environment: EnvironmentSpec = EnvironmentSpec()
    executor: ExecSpec = ExecSpec()
    tune: TuneSpec = TuneSpec()
    diagnose: DiagnoseSpec = DiagnoseSpec()
    serve: ServeSpec = ServeSpec()
    control: ControlSpec = ControlSpec()
    stream: StreamSpec = StreamSpec()
    faults: FaultsSpec = FaultsSpec()
    fanout: FanoutSpec = FanoutSpec()
    seed: int = 0
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "pipelines", _as_tuple(self.pipelines))

    # -- validation ---------------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check the whole tree; returns self so calls can chain."""
        if self.kind not in WORKLOAD_KINDS:
            raise SpecError(
                f"unknown workload kind {self.kind!r}; valid kinds: "
                f"{', '.join(WORKLOAD_KINDS)}")
        if self.kind in SINGLE_PIPELINE_KINDS:
            _check(len(self.pipelines) == 1,
                   f"{self.kind!r} experiments need exactly one pipeline, "
                   f"got {len(self.pipelines)}: {list(self.pipelines)!r}")
        for pipeline in self.pipelines:
            resolve_pipeline_name(pipeline)
        _check(isinstance(self.seed, int),
               f"seed must be an integer, got {self.seed!r}")
        _check(isinstance(self.name, str),
               f"name must be a string, got {self.name!r}")
        self.run.validate()
        self.environment.validate()
        self.executor.validate()
        if self.kind == "tune":
            self.tune.validate()
        elif self.kind == "diagnose":
            self.diagnose.validate()
        elif self.kind == "serve":
            self.serve.validate()
        elif self.kind == "control":
            self.control.validate()
        elif self.kind == "stream":
            self.stream.validate()
        elif self.kind == "fanout":
            self.fanout.validate()
            resolve_strategy_name(self.pipelines[0], self.fanout.strategy)
        self.faults.validate()
        _check(not self.faults.enabled
               or self.kind in ("serve", "control", "stream"),
               f"faults: only serve/control/stream runs can inject "
               f"faults, not kind {self.kind!r}")
        if self.kind != "control":
            _check(self.faults.blackouts == 0
                   and self.faults.crash_windows == 0,
                   f"faults.blackouts and faults.crash_windows need the "
                   f"control plane's retry path (kind: control), "
                   f"not kind {self.kind!r}")
            _check(self.faults.checkpoint_epochs == 0
                   and not self.faults.shed_slo,
                   f"faults.checkpoint_epochs and faults.shed_slo are "
                   f"control-plane knobs (kind: control), "
                   f"not kind {self.kind!r}")
        return self

    # -- pipeline selection --------------------------------------------------

    def pipeline_names(self) -> tuple:
        """The resolved pipeline selection for this workload."""
        if self.kind in ("serve", "control", "stream"):
            from repro.serve.jobs import DEFAULT_PIPELINE_MIX
            return tuple(DEFAULT_PIPELINE_MIX)
        if self.kind == "sweep" and not self.pipelines:
            from repro.pipelines.registry import PAPER_PIPELINES
            return tuple(PAPER_PIPELINES)
        return self.pipelines

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless plain-data form (JSON- and YAML-serializable)."""
        payload: dict[str, Any] = {
            "kind": self.kind,
            "pipelines": list(self.pipelines),
        }
        for section in _SECTIONS:
            sub = getattr(self, section)
            record = dataclasses.asdict(sub)
            for key, value in record.items():
                if isinstance(value, tuple):
                    record[key] = list(value)
            payload[section] = record
        payload["seed"] = self.seed
        payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a spec file).

        Missing sections and keys take their defaults; unknown keys are
        rejected with the valid key list.  The result is validated.
        """
        if not isinstance(payload, dict):
            raise SpecError(
                f"experiment spec must be a mapping, "
                f"got {type(payload).__name__}")
        _require_keys(cls, payload, "experiment")
        if "kind" not in payload:
            raise SpecError(
                f"experiment spec needs a 'kind'; valid kinds: "
                f"{', '.join(WORKLOAD_KINDS)}")
        kwargs: dict[str, Any] = {"kind": payload["kind"]}
        if "pipelines" in payload:
            value = payload["pipelines"]
            if isinstance(value, str):
                value = (value,)
            _check(isinstance(value, (list, tuple))
                   and all(isinstance(p, str) for p in value),
                   f"'pipelines' must be a list of pipeline names, "
                   f"got {value!r}")
            kwargs["pipelines"] = tuple(value)
        for section, section_cls in _SECTIONS.items():
            if section in payload:
                record = payload[section]
                _require_keys(section_cls, record, section)
                kwargs[section] = section_cls(**record)
        for scalar in ("seed", "name"):
            if scalar in payload:
                kwargs[scalar] = payload[scalar]
        return cls(**kwargs).validate()

    def with_overrides(self, **changes) -> "ExperimentSpec":
        """A copy with top-level fields replaced (convenience)."""
        return replace(self, **changes)

    # -- fingerprinting ------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 digest of the *resolved* experiment.

        Reuses the exec layer's canonical describe_* vocabulary (the
        same functions that key the ProfileCache), so the fingerprint
        changes exactly when the work the spec resolves to changes --
        renaming a storage device or recalibrating a pipeline moves the
        fingerprint even though the spec file text is unchanged.
        """
        from repro.exec.fingerprint import (SCHEMA_VERSION,
                                            describe_config,
                                            describe_environment,
                                            describe_pipeline)
        self.validate()
        payload: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "spec_schema": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "pipelines": [describe_pipeline(resolve_pipeline(name))
                          for name in self.pipeline_names()],
            "config": describe_config(self.run.to_run_config()),
            "environment": describe_environment(
                self.environment.to_environment()),
            "backend": self.environment.backend,
            "seed": self.seed,
        }
        if self.kind == "tune":
            payload["tune"] = dataclasses.asdict(self.tune)
        elif self.kind == "diagnose":
            payload["diagnose"] = dataclasses.asdict(self.diagnose)
        elif self.kind == "serve":
            payload["serve"] = dataclasses.asdict(self.serve)
        elif self.kind == "control":
            payload["control"] = dataclasses.asdict(self.control)
        elif self.kind == "stream":
            payload["stream"] = dataclasses.asdict(self.stream)
        elif self.kind == "fanout":
            payload["fanout"] = {
                **dataclasses.asdict(self.fanout),
                "strategy": resolve_strategy_name(self.pipelines[0],
                                                  self.fanout.strategy),
            }
        # The faults payload joins the digest only when the engine is
        # on, so every pre-existing spec fingerprint is unmoved.
        if self.faults.enabled:
            payload["faults"] = dataclasses.asdict(self.faults)
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
