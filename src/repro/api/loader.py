"""Spec-file loading: JSON and a dependency-free YAML subset.

``load_spec(path)`` reads an experiment file and returns a validated
:class:`~repro.api.spec.ExperimentSpec`.  ``*.json`` files are parsed
with the stdlib; ``*.yaml`` / ``*.yml`` files are parsed by
:func:`parse_simple_yaml`, a deliberately small subset of YAML that
covers experiment specs without adding a dependency:

* nested mappings by indentation (spaces only, consistent per level);
* lists either as ``- item`` block entries (scalars only, indented at
  or beyond their key, as in standard YAML) or inline ``[a, b, c]``
  (commas inside quoted scalars are respected);
* scalars: ``null``/``~``, ``true``/``false``, integers, floats,
  single- or double-quoted strings, bare strings;
* ``#`` comments (full-line, or after a value separated by whitespace).

Anchors, multi-line strings, flow mappings and tabs are rejected with
line-numbered :class:`~repro.errors.SpecError` messages.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.api.spec import ExperimentSpec
from repro.errors import SpecError


def load_spec(path: Union[str, Path]) -> ExperimentSpec:
    """Load and validate an experiment spec from a JSON or YAML file."""
    return ExperimentSpec.from_dict(load_spec_dict(path))


def load_spec_dict(path: Union[str, Path]) -> dict:
    """Load the raw spec mapping from a file (no validation)."""
    path = Path(path)
    if not path.exists():
        raise SpecError(f"spec file not found: {path}")
    text = path.read_text()
    if path.suffix.lower() == ".json":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from None
    elif path.suffix.lower() in (".yaml", ".yml"):
        try:
            payload = parse_simple_yaml(text)
        except SpecError as exc:
            raise SpecError(f"{path}: {exc}") from None
    else:
        raise SpecError(
            f"spec file {path} must end in .json, .yaml or .yml")
    if not isinstance(payload, dict):
        raise SpecError(
            f"{path}: top level must be a mapping, "
            f"got {type(payload).__name__}")
    return payload


def dump_spec(spec: ExperimentSpec, path: Union[str, Path]) -> None:
    """Write ``spec`` as pretty-printed JSON (the canonical file form)."""
    Path(path).write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=False) + "\n")


# -- the YAML subset ---------------------------------------------------------

def _scalar(token: str, lineno: int) -> Any:
    token = token.strip()
    if token in ("null", "~", ""):
        return None
    if token == "true":
        return True
    if token == "false":
        return False
    if (len(token) >= 2 and token[0] in "'\""
            and token[-1] == token[0]):
        return token[1:-1]
    if token and (token[0].isdigit()
                  or (token[0] in "+-." and len(token) > 1)):
        try:
            return int(token)
        except ValueError:
            try:
                return float(token)
            except ValueError:
                pass
    if token.startswith(("{", "[", "&", "*", "|", ">")):
        raise SpecError(
            f"line {lineno}: unsupported YAML syntax {token!r} "
            f"(the subset allows scalars, '- ' lists of scalars, inline "
            f"[..] lists as mapping values, and nested mappings)")
    return token


def _strip_comment(text: str) -> str:
    """Drop a trailing comment (``#`` preceded by whitespace, outside
    quotes).

    A quote character only *opens* a quoted span at the start of a
    value (after whitespace, ``:``, ``,`` or ``[``); an apostrophe
    inside a bare word (``it's``) is plain text, so a comment after it
    is still stripped.
    """
    quote = None
    for index, char in enumerate(text):
        if quote:
            if char == quote:
                quote = None
        elif (char in "'\""
              and (index == 0 or text[index - 1] in " \t:,[")):
            quote = char
        elif (char == "#"
              and (index == 0 or text[index - 1] in " \t")):
            return text[:index]
    return text


def _inline_list(token: str, lineno: int) -> list:
    body = token[1:-1].strip()
    if not body:
        return []
    # Split on commas outside quotes so quoted scalars may contain
    # them.  As in _strip_comment, a quote only *opens* a span at the
    # start of an element -- an apostrophe inside a bare word (don't)
    # is plain text, never a separator-swallowing quote.
    items: list[str] = []
    current: list[str] = []
    quote = None
    at_element_start = True
    for char in body:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in "'\"" and at_element_start:
            current.append(char)
            quote = char
            at_element_start = False
        elif char == ",":
            items.append("".join(current))
            current = []
            at_element_start = True
        else:
            current.append(char)
            if char not in " \t":
                at_element_start = False
    if quote:
        raise SpecError(f"line {lineno}: unterminated quote in "
                        f"inline list {token!r}")
    items.append("".join(current))
    if items and not items[-1].strip():
        items.pop()  # trailing comma, legal in YAML
    if any(not item.strip() for item in items):
        raise SpecError(
            f"line {lineno}: empty element in inline list {token!r}")
    return [_scalar(item, lineno) for item in items]


def parse_simple_yaml(text: str) -> Any:
    """Parse the YAML subset described in the module docstring."""
    lines: list[tuple[int, int, str]] = []  # (lineno, indent, content)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw:
            raise SpecError(
                f"line {lineno}: tabs are not allowed; indent with spaces")
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append((lineno, indent, stripped.strip()))
    if not lines:
        return {}
    value, consumed = _parse_block(lines, 0, lines[0][1])
    if consumed != len(lines):
        lineno = lines[consumed][0]
        raise SpecError(f"line {lineno}: unexpected de-indent")
    return value


def _parse_block(lines, start: int, indent: int):
    """Parse one indentation block starting at ``lines[start]``."""
    lineno, first_indent, content = lines[start]
    if first_indent != indent:
        raise SpecError(f"line {lineno}: inconsistent indentation")
    if content.startswith("- ") or content == "-":
        return _parse_list(lines, start, indent)
    return _parse_mapping(lines, start, indent)


def _parse_list(lines, start: int, indent: int):
    items = []
    index = start
    while index < len(lines):
        lineno, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise SpecError(
                f"line {lineno}: nested structures under '-' entries are "
                f"not supported by the YAML subset (use inline [..] lists)")
        if not content.startswith("- ") and content != "-":
            break
        items.append(_scalar(content[1:].strip(), lineno))
        index += 1
    return items, index


def _parse_mapping(lines, start: int, indent: int):
    mapping: dict[str, Any] = {}
    index = start
    while index < len(lines):
        lineno, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise SpecError(f"line {lineno}: unexpected indentation")
        if content.startswith("- "):
            break
        if ":" not in content:
            raise SpecError(
                f"line {lineno}: expected 'key: value', got {content!r}")
        key, _, rest = content.partition(":")
        key = _scalar(key, lineno)
        if not isinstance(key, str):
            raise SpecError(f"line {lineno}: mapping keys must be strings")
        if key in mapping:
            raise SpecError(f"line {lineno}: duplicate key {key!r}")
        rest = rest.strip()
        if rest:
            if rest.startswith("[") and rest.endswith("]"):
                mapping[key] = _inline_list(rest, lineno)
            else:
                mapping[key] = _scalar(rest, lineno)
            index += 1
            continue
        # Value is a nested block (or an empty value at end of input).
        # Standard YAML also allows block-list items at the *same*
        # indent as their key; accept that spelling too.
        if (index + 1 < len(lines)
                and (lines[index + 1][1] > line_indent
                     or (lines[index + 1][1] == line_indent
                         and lines[index + 1][2].startswith("- ")))):
            value, index = _parse_block(lines, index + 1,
                                        lines[index + 1][1])
            mapping[key] = value
        else:
            mapping[key] = None
            index += 1
    return mapping, index
