"""The Session facade: plan -> run -> report for every workload.

One front door over the four separately-grown engines::

    from repro.api import ExperimentSpec, RunSpec, Session

    spec = ExperimentSpec(kind="sweep", pipelines=("MP3", "FLAC"),
                          run=RunSpec(threads=8))
    session = Session()
    plan = session.plan(spec)        # inspect before paying for it
    artifact = session.run(spec)     # dispatches to the sweep engine
    print(artifact.report)           # == `presto sweep` stdout, byte-wise

``Session.run`` dispatches on ``spec.kind`` to the existing engines
(StrategyProfiler/SweepEngine, AutoTuner, BottleneckDoctor,
PreprocessingService, the fan-out models) and always returns a
:class:`~repro.api.artifact.RunArtifact` -- frame + report text +
kernel-event count + provenance -- so results from different workloads
compose into one comparison frame.  The classic ``presto`` subcommands
are thin shims over this class; their stdout is the artifact's
``report`` field verbatim, which the golden suite pins byte-for-byte.

Side-channel output (progress events, cache hit/miss statistics, sweep
wall-clock) goes to the session's ``stderr`` stream, exactly as the
historical CLI emitted it; pass ``stderr=None`` to silence it.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.api.artifact import Provenance, RunArtifact
from repro.api.plan import ExperimentPlan, build_plan
from repro.api.resolve import resolve_pipeline, resolve_strategy_name
from repro.api.spec import ExperimentSpec
from repro.errors import SpecError


#: Sentinel: "whatever sys.stderr is when the note is emitted" (so
#: stream redirection and pytest's capsys see session side-channel
#: output), as opposed to an explicit stream or ``None`` (silent).
_CURRENT_STDERR = object()


class Session:
    """Runs validated experiment specs through the existing engines."""

    def __init__(self, stderr=_CURRENT_STDERR):
        self._stderr = stderr
        self._last_artifact: Optional[RunArtifact] = None
        #: Per-run telemetry settings (set by run(), never by the spec:
        #: observation must not change spec fingerprints).
        self._telemetry = None

    @property
    def stderr(self):
        """The live side-channel stream (None when silenced)."""
        if self._stderr is _CURRENT_STDERR:
            return sys.stderr
        return self._stderr

    # -- lifecycle ----------------------------------------------------------

    def plan(self, spec: ExperimentSpec) -> ExperimentPlan:
        """Resolve ``spec`` without executing anything."""
        return build_plan(spec)

    def run(self, spec: ExperimentSpec, telemetry=None) -> RunArtifact:
        """Execute ``spec``; returns the workload's RunArtifact.

        ``telemetry`` (a :class:`repro.obs.Telemetry`) turns on metrics
        sampling / span tracing / the live ledger follower for this run
        only.  It rides beside the spec, never inside it, so spec
        fingerprints -- and everything keyed on them -- are unchanged by
        observation.  Only the simulated workloads (serve / control /
        stream) can be observed.
        """
        spec.validate()
        runner = getattr(self, f"_run_{spec.kind}", None)
        if runner is None:  # pragma: no cover - validate() gates kinds
            raise SpecError(f"unknown workload kind {spec.kind!r}")
        if telemetry is not None and telemetry.enabled \
                and spec.kind not in ("serve", "control", "stream"):
            raise SpecError(
                f"telemetry is only available for the simulated "
                f"workloads (serve/control/stream), not {spec.kind!r}")
        self._telemetry = telemetry
        try:
            artifact = runner(spec)
        finally:
            self._telemetry = None
        self._last_artifact = artifact
        return artifact

    @property
    def last_artifact(self) -> Optional[RunArtifact]:
        """The artifact of the most recent :meth:`run` (or None)."""
        return self._last_artifact

    # -- shared plumbing ----------------------------------------------------

    def _note(self, message: str) -> None:
        if self.stderr is not None:
            print(message, file=self.stderr)

    def _cache(self, spec: ExperimentSpec):
        if not spec.executor.cache_dir:
            return None
        from repro.exec.cache import ProfileCache
        return ProfileCache(spec.executor.cache_dir)

    def _report_cache(self, cache) -> None:
        if cache is not None:
            self._note(f"cache: {cache.stats.describe()}")

    def _events_of(self, profiles) -> int:
        """Kernel events across every run of every profile."""
        return sum(run.events_processed
                   for profile in profiles for run in profile.runs)

    def _artifact(self, spec: ExperimentSpec, frame, report: str,
                  events: int = 0) -> RunArtifact:
        return RunArtifact(frame=frame, report=report,
                           provenance=Provenance.capture(spec),
                           events_processed=events)

    def _telemetry_hooks(self):
        """(metrics, interval, tracer) engine arguments for this run."""
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled:
            return None, 60.0, None
        from repro.obs import (DEFAULT_METRICS_INTERVAL, MetricsRegistry,
                               Tracer)
        metrics = None
        interval = DEFAULT_METRICS_INTERVAL
        if telemetry.metrics_interval is not None:
            metrics = MetricsRegistry()
            interval = telemetry.metrics_interval
        tracer = (Tracer(detail=telemetry.trace_detail)
                  if telemetry.trace else None)
        return metrics, interval, tracer

    def _attach_telemetry(self, artifact: RunArtifact, metrics,
                          tracer) -> RunArtifact:
        if metrics is not None:
            artifact.metrics = metrics.to_dict()
        if tracer is not None:
            artifact.trace = tracer.to_chrome()
        return artifact

    def _check_observable(self, spec: ExperimentSpec) -> None:
        """Policy sweeps run several simulations; one metrics/trace
        export cannot represent them, so observation is rejected."""
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled:
            raise SpecError(
                "telemetry cannot observe a policy comparison "
                "(policy='all' runs one simulation per policy); pick "
                "a single policy")

    # -- workloads ----------------------------------------------------------

    def _run_profile(self, spec: ExperimentSpec) -> RunArtifact:
        from repro.core.analysis import StrategyAnalysis
        from repro.core.profiler import StrategyProfiler
        cache = self._cache(spec)
        profiler = StrategyProfiler(spec.environment.to_backend(),
                                    jobs=spec.executor.jobs, cache=cache)
        profiles = profiler.profile_pipeline(
            resolve_pipeline(spec.pipelines[0]),
            config=spec.run.to_run_config())
        report = StrategyAnalysis(profiles).summary()
        self._report_cache(cache)
        return self._artifact(spec, StrategyProfiler.to_frame(profiles),
                              report, self._events_of(profiles))

    def _run_sweep(self, spec: ExperimentSpec) -> RunArtifact:
        from repro.core.analysis import StrategyAnalysis
        from repro.core.profiler import StrategyProfiler
        from repro.exec import ProgressPrinter, SweepEngine
        cache = self._cache(spec)
        engine = SweepEngine(spec.environment.to_backend(),
                             executor=spec.executor.jobs, cache=cache)
        if spec.executor.progress and self.stderr is not None:
            engine.add_listener(ProgressPrinter(self.stderr))
        result = engine.sweep(
            [resolve_pipeline(name) for name in spec.pipeline_names()],
            config=spec.run.to_run_config())
        sections = [f"## {name}\n{StrategyAnalysis(profiles).summary()}"
                    for name, profiles in result.profiles.items()]
        report = "\n\n".join(sections)
        self._note(f"sweep: {result.job_count} strategies across "
                   f"{len(result.pipelines)} pipeline(s) in "
                   f"{result.elapsed:.2f}s")
        self._report_cache(cache)
        return self._artifact(
            spec, StrategyProfiler.to_frame(result.all_profiles()),
            report, self._events_of(result.all_profiles()))

    def _run_tune(self, spec: ExperimentSpec) -> RunArtifact:
        from repro.core.autotune import AutoTuner
        cache = self._cache(spec)
        tuner = AutoTuner(spec.environment.to_backend(),
                          jobs=spec.executor.jobs, cache=cache)
        tune = spec.tune
        report = tuner.tune(resolve_pipeline(spec.pipelines[0]),
                            weights=tune.to_weights(),
                            threads=tune.threads,
                            compressions=tune.compressions,
                            cache_modes=tune.cache_modes,
                            epochs=spec.run.epochs,
                            screen_keep=tune.screen_keep)
        text = f"{report.frame().to_markdown()}\n\n{report.describe()}"
        self._report_cache(cache)
        return self._artifact(spec, report.frame(), text,
                              self._events_of(report.profiles))

    def _run_diagnose(self, spec: ExperimentSpec) -> RunArtifact:
        from repro.diagnosis import BottleneckDoctor, verification_report
        cache = self._cache(spec)
        doctor = BottleneckDoctor(spec.environment.to_backend(),
                                  jobs=spec.executor.jobs, cache=cache)
        diagnosis = doctor.diagnose(resolve_pipeline(spec.pipelines[0]),
                                    config=spec.run.to_run_config(),
                                    sample_count=spec.diagnose.sample_count)
        text = (f"## diagnosis: {spec.pipelines[0]} "
                f"({spec.run.threads} threads, {spec.environment.storage})"
                f"\n{diagnosis.to_markdown()}")
        events = self._events_of(
            [diag.profile for diag in diagnosis.strategies])
        if spec.diagnose.verify_top:
            verified = doctor.verify(diagnosis,
                                     top=spec.diagnose.verify_top)
            events += self._events_of(
                [item.profile for item in verified
                 if item.profile is not None])
            text += f"\n\n{verification_report(verified)}"
        self._report_cache(cache)
        return self._artifact(spec, diagnosis.frame(), text, events)

    def _serve_sections(self, spec: ExperimentSpec, sub,
                        report) -> list:
        """The single-policy serve report sections.

        ``sub`` is a ServeSpec or ControlSpec (same scenario fields).
        Shared so a control run's service view renders *byte-for-byte*
        what ``presto serve`` prints -- the differential guarantee.
        """
        from repro.core.report import service_summary, tenant_table
        from repro.serve import diagnose_service
        header = (f"{sub.tenants} tenants, trace={sub.trace}(seed "
                  f"{spec.seed}), slots={sub.slots}, "
                  f"{spec.environment.storage}")
        return [f"## serve: {header}, policy={sub.policy}",
                tenant_table(report).to_markdown(), "",
                service_summary(report), "",
                diagnose_service(report).to_markdown()]

    def _run_serve(self, spec: ExperimentSpec) -> RunArtifact:
        from repro.core.report import tenant_table
        from repro.serve import (PreprocessingService, diagnose_service,
                                 generate_trace, sweep_policies)
        serve = spec.serve
        environment = spec.environment.to_environment()
        trace = generate_trace(serve.trace, serve.tenants, seed=spec.seed,
                               epochs=spec.run.epochs,
                               threads=spec.run.threads)
        if serve.policy == "all":
            self._check_observable(spec)
            if spec.faults.enabled:
                raise SpecError(
                    "faults cannot be injected into a policy comparison "
                    "(policy='all' runs one simulation per policy); "
                    "pick a single policy")
            header = (f"{serve.tenants} tenants, trace={serve.trace}(seed "
                      f"{spec.seed}), slots={serve.slots}, "
                      f"{spec.environment.storage}")
            result = sweep_policies(trace, slots=serve.slots,
                                    environment=environment,
                                    tie_break=serve.tie_break)
            parts = [f"## serve: {header}, policies compared",
                     result.frame().to_markdown(), "",
                     f"best policy by aggregate throughput: "
                     f"{result.best_policy()}"]
            for report in result.reports:
                parts += ["", diagnose_service(report).to_markdown()]
            events = sum(report.events_processed
                         for report in result.reports)
            return self._artifact(spec, result.frame(),
                                  "\n".join(parts), events)
        metrics, interval, tracer = self._telemetry_hooks()
        service = PreprocessingService(policy=serve.policy,
                                       slots=serve.slots,
                                       environment=environment,
                                       tie_break=serve.tie_break,
                                       metrics=metrics,
                                       metrics_interval=interval,
                                       tracer=tracer,
                                       faults=spec.faults.to_plan(
                                           spec.seed,
                                           cores=environment.cores))
        report = service.run(trace)
        parts = self._serve_sections(spec, serve, report)
        artifact = self._artifact(spec, tenant_table(report),
                                  "\n".join(parts),
                                  report.events_processed)
        return self._attach_telemetry(artifact, metrics, tracer)

    def _run_control(self, spec: ExperimentSpec) -> RunArtifact:
        from repro.ctl import Dispatcher, control_summary, control_table
        from repro.serve import generate_trace
        control = spec.control
        environment = spec.environment.to_environment()
        trace = generate_trace(control.trace, control.tenants,
                               seed=spec.seed, epochs=spec.run.epochs,
                               threads=spec.run.threads,
                               fault_rate=control.fault_rate)
        metrics, interval, tracer = self._telemetry_hooks()
        dispatcher = Dispatcher(policy=control.policy, slots=control.slots,
                                environment=environment,
                                tie_break=control.tie_break,
                                retry=control.retry_policy(),
                                admission_limit=control.admission_limit,
                                preempt=control.preempt,
                                autoscale=control.autoscale_config(),
                                metrics=metrics,
                                metrics_interval=interval,
                                tracer=tracer,
                                faults=spec.faults.to_plan(
                                    spec.seed,
                                    cores=environment.cores),
                                checkpoint_epochs=(
                                    spec.faults.checkpoint_epochs),
                                shed_slo=spec.faults.shed_slo)
        telemetry = self._telemetry
        if telemetry is not None and telemetry.follow is not None:
            from repro.obs import LedgerFollower
            follower = LedgerFollower(telemetry.follow)
            dispatcher.subscribe(follower.entry)
            dispatcher.subscribe_autoscale(follower.autoscale)
        report = dispatcher.run(trace)
        parts = self._serve_sections(spec, control, report.service)
        parts += ["", "## control plane", control_summary(report), "",
                  control_table(report).to_markdown()]
        artifact = self._artifact(spec, control_table(report),
                                  "\n".join(parts),
                                  report.events_processed)
        return self._attach_telemetry(artifact, metrics, tracer)

    def _run_stream(self, spec: ExperimentSpec) -> RunArtifact:
        from repro.core.report import stream_summary, stream_table
        from repro.stream import (StreamingService, diagnose_stream,
                                  generate_stream)
        stream = spec.stream
        environment = spec.environment.to_environment()
        streams = generate_stream(
            stream.tenants, seed=spec.seed, arrival=stream.arrival,
            rate=stream.rate, requests=stream.requests,
            batch=stream.batch, workers=stream.workers,
            queue_bound=stream.queue_bound,
            slo_stretch=stream.slo_stretch, shed=stream.shed)
        metrics, interval, tracer = self._telemetry_hooks()
        service = StreamingService(environment=environment,
                                   metrics=metrics,
                                   metrics_interval=interval,
                                   tracer=tracer,
                                   faults=spec.faults.to_plan(
                                       spec.seed,
                                       cores=environment.cores))
        report = service.run(streams, seed=spec.seed)
        header = (f"{stream.tenants} tenant streams, "
                  f"arrival={stream.arrival}(seed {spec.seed}) "
                  f"@{stream.rate:g}/s, batch={stream.batch}, "
                  f"workers={stream.workers}, "
                  f"{spec.environment.storage}")
        parts = [f"## stream: {header}",
                 stream_table(report).to_markdown(), "",
                 stream_summary(report), "",
                 diagnose_stream(report).to_markdown()]
        artifact = self._artifact(spec, stream_table(report),
                                  "\n".join(parts),
                                  report.events_processed)
        return self._attach_telemetry(artifact, metrics, tracer)

    def _run_fanout(self, spec: ExperimentSpec) -> RunArtifact:
        pipeline_name = spec.pipelines[0]
        pipeline = resolve_pipeline(pipeline_name)
        strategy = resolve_strategy_name(pipeline_name,
                                         spec.fanout.strategy)
        plan = pipeline.split_at(strategy)
        config = spec.run.to_run_config()
        trainers = tuple(spec.fanout.trainers)
        if spec.fanout.simulate:
            from repro.serve import fan_out_frame_simulated
            stats: dict = {}
            frame = fan_out_frame_simulated(
                plan, config, trainer_counts=trainers,
                environment=spec.environment.to_environment(),
                stats=stats)
            report = (f"co-simulating fan-out of "
                      f"{pipeline_name}/{strategy} "
                      f"(analytic bound vs DES delivery):\n"
                      f"{frame.to_markdown()}")
            return self._artifact(spec, frame, report,
                                  stats.get("events_processed", 0))
        from repro.core.distributed import fan_out_frame
        single = spec.environment.to_backend().run(plan, config)
        frame = fan_out_frame(plan, config,
                              single_job_sps=single.throughput,
                              trainer_counts=trainers)
        report = (f"fanning out {pipeline_name}/{strategy} "
                  f"(single-trainer T4 = {single.throughput:.0f} SPS):\n"
                  f"{frame.to_markdown()}")
        return self._artifact(spec, frame, report,
                              single.events_processed)
