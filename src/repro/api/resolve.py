"""Shared name resolvers with actionable errors.

Every registry-backed name in an experiment -- pipelines, storage
devices, scheduler policies, trace shapes, backends, executors -- is
resolved through one of these helpers.  On an unknown name they raise
:class:`~repro.errors.SpecError` listing the valid names (and a
nearest-match suggestion when one is close), so both the classic CLI
subcommands and the declarative ``presto run`` path fail with::

    presto: error: unknown pipeline 'CV3'; did you mean 'CV'? valid
    pipelines: CV, CV+greyscale-after, ...

instead of a traceback.  The resolvers are the single validation
authority: ``argparse`` no longer carries ``choices`` lists for these
names, so the CLI and spec files cannot drift apart.
"""

from __future__ import annotations

import difflib
from typing import Optional, Sequence

from repro.errors import SpecError

#: Execution backends understood by the API.
BACKEND_NAMES = ("simulated", "inprocess")


def _unknown(kind: str, name: object, valid: Sequence[str],
             plural: Optional[str] = None) -> SpecError:
    """Build the one-line "unknown name" error with suggestions."""
    names = sorted(valid)
    plural = plural or f"{kind}s"
    hint = ""
    if isinstance(name, str):
        close = difflib.get_close_matches(name, names, n=1)
        if close:
            hint = f" did you mean {close[0]!r}?"
        label = repr(name)
    else:
        label = f"{name!r} (expected a string)"
    return SpecError(
        f"unknown {kind} {label};{hint} valid {plural}: {', '.join(names)}")


def resolve_pipeline_name(name: str) -> str:
    """Validate a pipeline name against the registry."""
    from repro.pipelines.registry import registered_names
    if name not in registered_names():
        raise _unknown("pipeline", name, registered_names())
    return name


def resolve_pipeline(name: str):
    """Build a fresh :class:`~repro.pipelines.base.PipelineSpec`."""
    from repro.pipelines.registry import get_pipeline
    return get_pipeline(resolve_pipeline_name(name))


def resolve_strategy_name(pipeline_name: str,
                          strategy: Optional[str]) -> str:
    """Validate a split/strategy name of ``pipeline_name``.

    ``None`` selects the pipeline's last (most materialised) strategy,
    matching the historical ``presto fanout`` default.
    """
    pipeline = resolve_pipeline(pipeline_name)
    names = pipeline.strategy_names()
    if strategy is None:
        return names[-1]
    if strategy not in names:
        raise SpecError(
            f"unknown strategy {strategy!r} for pipeline "
            f"{pipeline_name!r}; valid strategies: {', '.join(names)}")
    return strategy


def resolve_storage(name: str):
    """Look up a storage :class:`~repro.sim.storage.DeviceProfile`."""
    from repro.sim.storage import DEVICE_PROFILES
    if name not in DEVICE_PROFILES:
        raise _unknown("storage device", name, DEVICE_PROFILES,
                       plural="storage devices")
    return DEVICE_PROFILES[name]


def resolve_policy(name: str, allow_all: bool = True) -> str:
    """Validate a scheduler policy name (``"all"`` = compare every one)."""
    from repro.serve.policies import POLICY_NAMES
    valid = (*POLICY_NAMES, "all") if allow_all else tuple(POLICY_NAMES)
    if name not in valid:
        raise _unknown("policy", name, valid, plural="policies")
    return name


def resolve_trace(kind: str) -> str:
    """Validate an arrival-trace shape name."""
    from repro.serve.jobs import TRACE_KINDS
    if kind not in TRACE_KINDS:
        raise _unknown("trace", kind, TRACE_KINDS)
    return kind


def resolve_arrival(kind: str) -> str:
    """Validate a streaming arrival-process shape name."""
    from repro.stream.requests import ARRIVAL_KINDS
    if kind not in ARRIVAL_KINDS:
        raise _unknown("arrival", kind, ARRIVAL_KINDS)
    return kind


def resolve_backend_name(name: str) -> str:
    """Validate an execution-backend name."""
    if name not in BACKEND_NAMES:
        raise _unknown("backend", name, BACKEND_NAMES)
    return name
