"""The common result record every workload returns.

A :class:`RunArtifact` is what :meth:`repro.api.session.Session.run`
hands back regardless of workload kind: the result :class:`Frame`, the
rendered report text (byte-identical to the classic CLI output for that
workload), the deterministic kernel-event count, and
:class:`Provenance` (spec fingerprint, seed, package/python versions)
so any artifact can be traced back to the exact spec that produced it.

Because every workload speaks Frame, results from *different* workloads
compose: :func:`comparison_frame` unions artifact frames into one table
with ``experiment`` / ``workload`` / ``fingerprint`` columns -- the
"compare this sweep against that serve run" view the paper's
many-configurations methodology needs.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.frame import Frame


@dataclass(frozen=True)
class Provenance:
    """Where an artifact came from; enough to reproduce it exactly."""

    fingerprint: str
    kind: str
    seed: int
    spec: dict = field(default_factory=dict, hash=False, compare=False)
    version: str = ""
    python: str = ""

    @classmethod
    def capture(cls, spec) -> "Provenance":
        """Stamp provenance for ``spec`` (an ExperimentSpec)."""
        from repro import __version__
        return cls(fingerprint=spec.fingerprint(), kind=spec.kind,
                   seed=spec.seed, spec=spec.to_dict(),
                   version=__version__,
                   python=platform.python_version())

    def describe(self) -> str:
        return (f"{self.kind} experiment {self.fingerprint[:12]} "
                f"(seed {self.seed}, repro {self.version}, "
                f"python {self.python})")


@dataclass
class RunArtifact:
    """One workload's complete outcome in the common shape."""

    frame: Frame
    report: str
    provenance: Provenance
    #: Kernel events resolved by the run's simulations (0 for workloads
    #: that execute nothing simulated, e.g. in-process profiling).
    events_processed: int = 0
    #: Telemetry exports (:mod:`repro.obs`), attached only when the run
    #: was observed: the metrics registry's time-series dict and the
    #: Chrome trace-event payload.  ``None`` otherwise.
    metrics: Optional[dict] = None
    trace: Optional[dict] = None

    @property
    def kind(self) -> str:
        return self.provenance.kind

    @property
    def fingerprint(self) -> str:
        return self.provenance.fingerprint

    def to_dict(self) -> dict:
        """JSON-serializable form (frame flattened to records)."""
        return {
            "provenance": {
                "fingerprint": self.provenance.fingerprint,
                "kind": self.provenance.kind,
                "seed": self.provenance.seed,
                "version": self.provenance.version,
                "python": self.provenance.python,
                "spec": self.provenance.spec,
            },
            "events_processed": self.events_processed,
            "records": list(self.frame.rows()),
            "report": self.report,
            **({"metrics": self.metrics}
               if self.metrics is not None else {}),
            **({"trace": self.trace} if self.trace is not None else {}),
        }


def comparison_frame(artifacts: Sequence[RunArtifact],
                     labels: Optional[Sequence[str]] = None) -> Frame:
    """Union several artifacts' frames into one comparison table.

    Each row is tagged with the experiment label (the spec ``name`` when
    set, else the fingerprint prefix), its workload kind and the full
    fingerprint; columns a workload does not produce are None.
    """
    records = []
    for index, artifact in enumerate(artifacts):
        if labels is not None and index < len(labels):
            label = labels[index]
        else:
            label = (artifact.provenance.spec.get("name")
                     or artifact.fingerprint[:12])
        for row in artifact.frame.rows():
            records.append({
                "experiment": label,
                "workload": artifact.kind,
                "fingerprint": artifact.fingerprint[:12],
                **row,
            })
    return Frame.from_records(records)
