"""Resource attribution: which resource ate the epoch?

Turns a measured :class:`~repro.sim.trace.ResourceTrace` (or, for
backends that cannot trace, the analytic model's per-sample time
components) into a :class:`ResourceAttribution` -- the fraction of epoch
thread-time bound on **cpu**, **storage** reads, **decode** work and
**stall** (serialized hand-offs, shuffling, load imbalance).  The four
fractions are non-negative and sum to exactly 1.0; this contract is what
the property-test layer pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.backends.analytic import AnalyticModel
from repro.backends.base import Environment
from repro.core.profiler import StrategyProfile
from repro.errors import DiagnosisError
from repro.sim.trace import ResourceTrace

#: Attribution categories, in presentation order.
CATEGORIES = ("cpu", "storage", "decode", "stall")

#: Mapping from the analytic model's per-sample components to categories.
_MODEL_CATEGORY = {
    "open": "storage",
    "read": "storage",
    "decompress": "decode",
    "deserialize": "decode",
    "native_cpu": "cpu",
    "external_cpu": "cpu",
    "shuffle": "stall",
    "overhead": "stall",
    "dispatch": "stall",
}


@dataclass(frozen=True)
class ResourceAttribution:
    """Fractions of epoch thread-time per resource; sum to 1.0."""

    cpu: float
    storage: float
    decode: float
    stall: float
    #: ``"trace"`` when measured by the simulator, ``"model"`` when
    #: estimated analytically (e.g. for in-process profiles).
    source: str = "trace"

    def __post_init__(self):
        for category in CATEGORIES:
            value = getattr(self, category)
            if value < -1e-9:
                raise DiagnosisError(
                    f"negative attribution fraction {category}={value}")
        if abs(self.total - 1.0) > 1e-6:
            raise DiagnosisError(
                f"attribution fractions must sum to 1.0, got {self.total}")

    @property
    def total(self) -> float:
        return self.cpu + self.storage + self.decode + self.stall

    @property
    def dominant(self) -> str:
        """The binding category (ties resolved in CATEGORIES order)."""
        return max(CATEGORIES, key=lambda c: getattr(self, c))

    def as_dict(self) -> dict[str, float]:
        return {category: getattr(self, category)
                for category in CATEGORIES}

    def describe(self) -> str:
        shares = ", ".join(f"{category} {getattr(self, category):.0%}"
                           for category in CATEGORIES)
        return f"bound on {self.dominant} ({shares})"


def from_trace(trace: ResourceTrace) -> ResourceAttribution:
    """Attribution measured from a simulated epoch's resource trace."""
    shares = trace.fractions()
    return ResourceAttribution(cpu=shares["cpu"], storage=shares["storage"],
                               decode=shares["decode"],
                               stall=shares["stall"], source="trace")


def from_model(profile: StrategyProfile,
               environment: Optional[Environment] = None,
               model: Optional[AnalyticModel] = None) -> ResourceAttribution:
    """Analytic fallback for profiles without measured traces."""
    model = model or AnalyticModel(environment)
    strategy = profile.strategy
    components = model.sample_time_components(strategy.plan, strategy.config)
    totals = {category: 0.0 for category in CATEGORIES}
    for name, seconds in components.items():
        # Components the mapping does not know about count as stall:
        # stall is by definition the unattributed remainder, so a new
        # model component degrades gracefully instead of raising.
        totals[_MODEL_CATEGORY.get(name, "stall")] += seconds
    budget = sum(totals.values())
    if budget <= 0:
        return ResourceAttribution(0.0, 0.0, 0.0, 1.0, source="model")
    cpu, storage, decode = (totals["cpu"] / budget,
                            totals["storage"] / budget,
                            totals["decode"] / budget)
    return ResourceAttribution(cpu=cpu, storage=storage, decode=decode,
                               stall=1.0 - (cpu + storage + decode),
                               source="model")


def attribute(profile: StrategyProfile,
              environment: Optional[Environment] = None,
              model: Optional[AnalyticModel] = None) -> ResourceAttribution:
    """Attribution for one profile: measured if possible, modeled if not."""
    trace = profile.trace
    if trace is not None:
        return from_trace(trace)
    return from_model(profile, environment=environment, model=model)
