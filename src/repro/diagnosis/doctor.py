"""The bottleneck doctor: attribute, recommend, verify.

:class:`BottleneckDoctor` is the advisory layer the paper's question
ultimately asks for.  It profiles every legal strategy of a pipeline
through the existing :class:`~repro.exec.engine.SweepEngine` (so
``--jobs`` fan-out and the profile cache apply unchanged), attributes
each epoch's thread-time to CPU / storage / decode / stall, proposes
ranked rewrites with predicted speedups, and -- on request -- *verifies*
the top recommendations by actually re-running the rewritten strategies
and reporting predicted-vs-measured error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backends.analytic import AnalyticModel
from repro.backends.base import Backend, Environment, RunConfig
from repro.core.frame import Frame
from repro.core.profiler import StrategyProfile
from repro.diagnosis.attribution import ResourceAttribution, attribute
from repro.diagnosis.rewrites import Rewrite, propose_rewrites
from repro.errors import DiagnosisError
from repro.pipelines.base import PipelineSpec


@dataclass
class StrategyDiagnosis:
    """One strategy's attribution plus its ranked rewrites."""

    profile: StrategyProfile
    attribution: ResourceAttribution
    rewrites: list[Rewrite] = field(default_factory=list)

    @property
    def strategy_name(self) -> str:
        return self.profile.strategy.name

    @property
    def top_rewrite(self) -> Rewrite:
        return self.rewrites[0]

    def to_record(self) -> dict:
        """Diagnosis-aware report row (the ``core`` frame columns plus
        attribution source and the headline recommendation)."""
        record = self.profile.to_record()
        shares = self.attribution.as_dict()
        record.update({
            "cpu_frac": round(shares["cpu"], 4),
            "storage_frac": round(shares["storage"], 4),
            "decode_frac": round(shares["decode"], 4),
            "stall_frac": round(shares["stall"], 4),
            "bound": self.attribution.dominant,
            "attribution_source": self.attribution.source,
            "top_rewrite": self.top_rewrite.kind,
            "predicted_speedup": round(
                self.top_rewrite.predicted_speedup, 3),
        })
        return record

    def to_dict(self) -> dict:
        """Machine-readable export (the uniform doctor schema)."""
        return {
            "strategy": self.strategy_name,
            "attribution": self.attribution.as_dict(),
            "bound": self.attribution.dominant,
            "attribution_source": self.attribution.source,
            "rewrites": [rewrite.to_dict() for rewrite in self.rewrites],
        }


@dataclass
class VerifiedRewrite:
    """A rewrite re-run through a backend, with prediction error."""

    diagnosis: StrategyDiagnosis
    rewrite: Rewrite
    measured_sps: float
    #: The verification run's own profile (None for legacy callers);
    #: lets cost accounting include what verification executed.
    profile: Optional[StrategyProfile] = None

    @property
    def measured_speedup(self) -> float:
        baseline = self.rewrite.baseline_sps
        return self.measured_sps / baseline if baseline > 0 else 0.0

    @property
    def prediction_error(self) -> float:
        """Relative error of the predicted throughput vs measured."""
        if self.measured_sps <= 0:
            return float("inf")
        return (self.rewrite.predicted_sps
                - self.measured_sps) / self.measured_sps

    @property
    def sign_matches(self) -> bool:
        """Did the measured speedup land on the predicted side of 1.0?"""
        return ((self.rewrite.predicted_speedup >= 1.0)
                == (self.measured_speedup >= 1.0))

    def to_dict(self) -> dict:
        return {
            "strategy": self.diagnosis.strategy_name,
            "rewrite": self.rewrite.to_dict(),
            "measured_sps": self.measured_sps,
            "measured_speedup": self.measured_speedup,
            "prediction_error": self.prediction_error,
            "sign_matches": self.sign_matches,
        }

    def describe(self) -> str:
        return (f"{self.rewrite.kind} on "
                f"{self.diagnosis.strategy_name}: predicted "
                f"{self.rewrite.predicted_speedup:.2f}x, measured "
                f"{self.measured_speedup:.2f}x "
                f"({self.rewrite.metric} {self.measured_sps:.0f} SPS, "
                f"prediction error {self.prediction_error:+.1%})")


@dataclass
class PipelineDiagnosis:
    """The doctor's full answer for one pipeline."""

    pipeline: str
    config: RunConfig
    strategies: list[StrategyDiagnosis] = field(default_factory=list)

    def frame(self) -> Frame:
        """Diagnosis report frame, one row per strategy."""
        return Frame.from_records(
            [diagnosis.to_record() for diagnosis in self.strategies])

    def best(self) -> StrategyDiagnosis:
        """The highest-throughput strategy's diagnosis."""
        return max(self.strategies,
                   key=lambda diagnosis: diagnosis.profile.throughput)

    def ranked_rewrites(self) -> list[tuple[StrategyDiagnosis, Rewrite]]:
        """All (strategy, rewrite) pairs, best predicted speedup first."""
        pairs = [(diagnosis, rewrite)
                 for diagnosis in self.strategies
                 for rewrite in diagnosis.rewrites]
        pairs.sort(key=lambda pair: (-pair[1].predicted_speedup,
                                     pair[0].strategy_name, pair[1].kind))
        return pairs

    def to_dict(self) -> dict:
        """Machine-readable export (the uniform doctor schema)."""
        return {
            "doctor": "pipeline",
            "pipeline": self.pipeline,
            "strategies": [diagnosis.to_dict()
                           for diagnosis in self.strategies],
        }

    def to_markdown(self) -> str:
        """The ``presto diagnose`` report body."""
        table = self.frame().select([
            "strategy", "throughput_sps", "cpu_frac", "storage_frac",
            "decode_frac", "stall_frac", "bound", "top_rewrite",
            "predicted_speedup",
        ]).to_markdown()
        lines = [table, "", "rewrites (per strategy, best first):"]
        for diagnosis in self.strategies:
            lines.append(f"  {diagnosis.strategy_name}  "
                         f"[{diagnosis.attribution.describe()}]")
            for rank, rewrite in enumerate(diagnosis.rewrites, start=1):
                lines.append(f"    {rank}. {rewrite.describe()}")
        return "\n".join(lines)


def verification_report(verified: Sequence[VerifiedRewrite]) -> str:
    if not verified:
        return "verification: no verifiable rewrites selected"
    lines = [f"verification (top {len(verified)}):"]
    for item in verified:
        lines.append(f"  {item.describe()}")
    return "\n".join(lines)


class BottleneckDoctor:
    """Profiles, attributes, recommends and verifies.

    ``jobs``/``cache`` mirror the sweep-engine knobs of the profiling
    commands; an explicit ``engine`` overrides both.  The analytic
    ``model`` anchors rewrite predictions and supplies attribution for
    backends that measure no traces.
    """

    def __init__(self, backend: Optional[Backend] = None,
                 jobs: Optional[int] = None, cache=None, engine=None,
                 model: Optional[AnalyticModel] = None):
        if backend is None and engine is None:
            from repro.backends.simulated import SimulatedBackend
            backend = SimulatedBackend()
        if engine is None:
            from repro.exec.engine import SweepEngine
            engine = SweepEngine(backend, executor=jobs, cache=cache)
        self.engine = engine
        self.environment: Environment = engine.environment
        self.model = model or AnalyticModel(self.environment)

    # -- diagnosis ----------------------------------------------------------

    def diagnose(self, pipeline: PipelineSpec,
                 config: Optional[RunConfig] = None,
                 sample_count: Optional[int] = None) -> PipelineDiagnosis:
        """Profile every legal split of ``pipeline`` and diagnose each."""
        config = config or RunConfig()
        profiles = self.engine.profile_pipeline(pipeline, config=config,
                                                sample_count=sample_count)
        return self.diagnose_profiles(profiles, pipeline=pipeline.name,
                                      config=config)

    def diagnose_profiles(self, profiles: Sequence[StrategyProfile],
                          pipeline: Optional[str] = None,
                          config: Optional[RunConfig] = None,
                          ) -> PipelineDiagnosis:
        """Diagnose already-profiled strategies (no re-execution)."""
        if not profiles:
            raise DiagnosisError("no profiles to diagnose")
        pipeline = pipeline or profiles[0].result.pipeline
        config = config or profiles[0].strategy.config
        diagnosis = PipelineDiagnosis(pipeline=pipeline, config=config)
        for profile in profiles:
            attribution = attribute(profile, environment=self.environment,
                                    model=self.model)
            rewrites = propose_rewrites(profile, attribution,
                                        environment=self.environment,
                                        model=self.model)
            diagnosis.strategies.append(StrategyDiagnosis(
                profile=profile, attribution=attribution,
                rewrites=rewrites))
        return diagnosis

    # -- cluster-level diagnosis ---------------------------------------------

    def diagnose_service(self, report):
        """Attribute a multi-tenant service run's thread-time and rank
        shared-resource findings.

        ``report`` is a :class:`repro.serve.service.ServiceReport`; the
        return value is a
        :class:`repro.serve.doctor.ServiceDiagnosis` whose findings are
        cluster-level verdicts ("metadata service saturated by tenant
        churn", "duplicate offline preprocessing", ...).  Imported
        lazily: the serving layer sits above diagnosis in the stack.
        """
        from repro.serve.doctor import diagnose_service
        return diagnose_service(report)

    def diagnose_stream(self, report):
        """Rank latency rewrites for a streaming run.

        ``report`` is a :class:`repro.stream.report.StreamReport`; the
        return value is a
        :class:`repro.stream.doctor.StreamDiagnosis` whose findings are
        per-tenant latency rewrites (shrink-batch, raise-prefetch,
        shed-admission) anchored by predicted p99 deltas.  Imported
        lazily: the streaming layer sits above diagnosis in the stack.
        """
        from repro.stream.doctor import diagnose_stream
        return diagnose_stream(report)

    # -- verification --------------------------------------------------------

    def verify(self, diagnosis: PipelineDiagnosis,
               top: int = 2) -> list[VerifiedRewrite]:
        """Re-run the ``top`` N verifiable rewrites; measure vs predict.

        Rewrites are drawn across all strategies of the diagnosis in
        predicted-speedup order, deduplicated by rewritten strategy, and
        executed through the engine (one fan-out, cache-aware).
        """
        if top < 1:
            raise DiagnosisError(f"verify-top must be >= 1, got {top}")
        selected: list[tuple[StrategyDiagnosis, Rewrite]] = []
        seen: set[str] = set()
        for strategy_diagnosis, rewrite in diagnosis.ranked_rewrites():
            if not rewrite.verifiable:
                continue
            uid = rewrite.strategy.uid
            if uid in seen:
                continue
            seen.add(uid)
            selected.append((strategy_diagnosis, rewrite))
            if len(selected) == top:
                break
        if not selected:
            return []
        profiles = self.engine.profile(
            [rewrite.strategy for _, rewrite in selected])
        verified = []
        for (strategy_diagnosis, rewrite), profile in zip(selected,
                                                          profiles):
            measured = (profile.cached_throughput
                        if rewrite.metric == "cached"
                        else profile.throughput)
            verified.append(VerifiedRewrite(
                diagnosis=strategy_diagnosis, rewrite=rewrite,
                measured_sps=measured, profile=profile))
        return verified
