"""Actionable pipeline rewrites with predicted speedups.

Given one profiled strategy and its resource attribution, propose the
rewrites Plumber-style tuners apply automatically (Kuchnik et al.,
MLSys 2022) and the paper's own levers (Sec. 4.2-4.4): raise executor
parallelism, switch the storage codec, retain the page cache across
epochs, relocate the application-level ``CacheNode`` behind the hot
deterministic ops, move the offline/online split forward, and insert a
``PrefetchNode`` to overlap producer stalls.

Every rewrite carries a *predicted* throughput.  Config-expressible
rewrites (``target == "config"``) also carry the rewritten
:class:`~repro.core.strategy.Strategy`, so the doctor can re-run them
through any backend and report predicted-vs-measured error; graph-level
rewrites (``target == "graph"``) are advisory node-placement changes
for the real dataset runtime (:mod:`repro.pipeline`).

Predictions are *anchored*: the analytic model supplies the ratio
between the rewritten and current strategy, and the measured throughput
scales that ratio -- so a model bias common to both sides cancels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro import calibration as cal
from repro.backends.analytic import AnalyticModel
from repro.backends.base import CACHE_APPLICATION, CACHE_NONE, CACHE_SYSTEM, \
    Environment, RunConfig
from repro.core.profiler import StrategyProfile
from repro.core.strategy import Strategy
from repro.diagnosis.attribution import ResourceAttribution
from repro.errors import ProfilingError

#: Config rewrites below this predicted ratio are not worth proposing.
MIN_CONFIG_SPEEDUP = 1.02

#: Fraction of stall time a prefetch node is assumed to overlap away.
PREFETCH_OVERLAP = 0.5


@dataclass(frozen=True)
class Rewrite:
    """One recommended change, with its predicted effect."""

    kind: str
    description: str
    predicted_speedup: float
    predicted_sps: float
    baseline_sps: float
    #: ``"config"`` (re-runnable through a backend) or ``"graph"``
    #: (node-placement advice for the dataset runtime).
    target: str = "config"
    #: The rewritten strategy, present iff the rewrite is verifiable.
    strategy: Optional[Strategy] = None
    #: Which measured metric verifies the prediction: the cold
    #: first-epoch ``throughput`` or the warm last-epoch ``cached``.
    metric: str = "throughput"

    @property
    def verifiable(self) -> bool:
        return self.strategy is not None

    def describe(self) -> str:
        return (f"{self.kind}: {self.description} -- predicted "
                f"{self.predicted_speedup:.2f}x "
                f"({self.predicted_sps:.0f} SPS)")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "predicted_speedup": self.predicted_speedup,
            "predicted_sps": self.predicted_sps,
            "baseline_sps": self.baseline_sps,
            "target": self.target,
            "metric": self.metric,
            "verifiable": self.verifiable,
        }


def propose_rewrites(profile: StrategyProfile,
                     attribution: ResourceAttribution,
                     environment: Optional[Environment] = None,
                     model: Optional[AnalyticModel] = None) -> list[Rewrite]:
    """Ranked rewrites for one profiled strategy (best first, never
    empty: the prefetch advisory always applies)."""
    environment = environment or Environment()
    model = model or AnalyticModel(environment)
    proposer = _Proposer(profile, attribution, environment, model)
    rewrites = proposer.propose()
    rewrites.sort(key=lambda rewrite: (-rewrite.predicted_speedup,
                                       rewrite.kind))
    return rewrites


class _Proposer:
    def __init__(self, profile: StrategyProfile,
                 attribution: ResourceAttribution,
                 environment: Environment, model: AnalyticModel):
        self.profile = profile
        self.attribution = attribution
        self.environment = environment
        self.model = model
        self.strategy = profile.strategy
        self.plan = self.strategy.plan
        self.config = self.strategy.config
        self.pipeline = self.plan.pipeline
        self.measured = profile.throughput
        self._est_current: Optional[float] = None

    def propose(self) -> list[Rewrite]:
        rewrites = [self._insert_prefetch()]
        for candidate in (self._raise_parallelism(),
                          self._switch_codec(),
                          self._system_cache(),
                          self._relocate_cache(),
                          self._materialize_further()):
            if candidate is not None:
                rewrites.append(candidate)
        return rewrites

    # -- anchored config predictions ---------------------------------------

    def _config_ratio(self, new_plan, new_config) -> Optional[float]:
        """Model-predicted throughput ratio of (new / current)."""
        if self._est_current is None:
            try:
                self._est_current = self.model.estimate(
                    self.plan, self.config).throughput
            except ProfilingError:
                self._est_current = 0.0
        try:
            est_new = self.model.estimate(new_plan, new_config).throughput
        except ProfilingError:
            return None
        if self._est_current <= 0 or self.measured <= 0:
            return None
        return est_new / self._est_current

    def _config_rewrite(self, kind: str, description: str, new_plan,
                        new_config, metric: str = "throughput",
                        predicted_sps: Optional[float] = None,
                        ) -> Optional[Rewrite]:
        if predicted_sps is None:
            ratio = self._config_ratio(new_plan, new_config)
            if ratio is None:
                return None
            predicted_sps = self.measured * ratio
        if self.measured <= 0:
            return None
        speedup = predicted_sps / self.measured
        if speedup < MIN_CONFIG_SPEEDUP:
            return None
        return Rewrite(kind=kind, description=description,
                       predicted_speedup=speedup,
                       predicted_sps=predicted_sps,
                       baseline_sps=self.measured,
                       target="config",
                       strategy=Strategy(new_plan, new_config),
                       metric=metric)

    # -- the rules ----------------------------------------------------------

    def _insert_prefetch(self) -> Rewrite:
        """Overlap producer stalls with a bounded background queue."""
        stall = self.attribution.stall
        speedup = 1.0 / (1.0 - PREFETCH_OVERLAP * min(stall, 0.95))
        buffer_size = 2 * self.config.threads
        return Rewrite(
            kind="insert-prefetch",
            description=(f"insert PrefetchNode(buffer={buffer_size}) before "
                         f"the training consumer to overlap the "
                         f"{stall:.0%} stall share"),
            predicted_speedup=speedup,
            predicted_sps=self.measured * speedup,
            baseline_sps=self.measured,
            target="graph")

    def _raise_parallelism(self) -> Optional[Rewrite]:
        """More reader threads, up to the core count."""
        cores = self.environment.cores
        if self.config.threads >= cores:
            return None
        new_config = replace(self.config, threads=cores)
        return self._config_rewrite(
            "raise-parallelism",
            f"raise executor parallelism from {self.config.threads} to "
            f"{cores} reader threads (one per core)",
            self.plan, new_config)

    def _switch_codec(self) -> Optional[Rewrite]:
        """Compress the materialised representation (paper Sec. 4.3)."""
        if self.config.compression is not None or self.plan.is_unprocessed:
            return None
        stored = self.plan.materialized
        codecs = {name: stored.saving(name) for name in ("GZIP", "ZLIB")}
        best = max(codecs, key=codecs.get)
        if codecs[best] <= 0:
            return None
        new_config = replace(self.config, compression=best)
        return self._config_rewrite(
            "switch-codec",
            f"store {stored.name!r} {best}-compressed "
            f"({codecs[best]:.0%} smaller), trading decompression CPU "
            f"for storage reads",
            self.plan, new_config)

    def _system_cache(self) -> Optional[Rewrite]:
        """Retain the page cache across epochs (paper Sec. 4.2 obs. 1)."""
        if self.config.cache_mode != CACHE_NONE:
            return None
        stored_bytes = self.profile.storage_bytes
        page_cache = (cal.PAGE_CACHE_FRACTION
                      * self.environment.ram_bytes)
        if stored_bytes > page_cache:
            return None
        predicted = self._predict_warm_from_memory()
        if predicted is None:
            return None
        new_config = replace(self.config, cache_mode=CACHE_SYSTEM,
                             epochs=max(2, self.config.epochs))
        return self._config_rewrite(
            "system-cache",
            f"retain the OS page cache across epochs (the "
            f"{stored_bytes / 1e9:.1f} GB working set fits in RAM); "
            f"epochs after the first read from memory",
            self.plan, new_config, metric="cached",
            predicted_sps=predicted)

    def _relocate_cache(self) -> Optional[Rewrite]:
        """Move the app-level CacheNode behind the hot deterministic ops."""
        if self.config.cache_mode == CACHE_APPLICATION:
            return None
        pipeline = self.pipeline
        cache_index = pipeline.max_offline_index()
        tensor_bytes = (pipeline.representations[cache_index].bytes_per_sample
                        * pipeline.sample_count)
        if tensor_bytes > self.environment.ram_bytes:
            return None
        predicted = self._predict_app_cache()
        if predicted is None:
            return None
        anchor = (pipeline.representations[cache_index].name
                  if cache_index > 0 else "the source")
        new_config = replace(self.config, cache_mode=CACHE_APPLICATION,
                             epochs=max(2, self.config.epochs))
        return self._config_rewrite(
            "relocate-cache",
            f"place CacheNode after {anchor!r} (the last deterministic "
            f"representation) so epochs after the first serve final "
            f"tensors from RAM",
            self.plan, new_config, metric="cached",
            predicted_sps=predicted)

    def _materialize_further(self) -> Optional[Rewrite]:
        """Move the offline/online split one representation forward."""
        next_index = self.plan.split_index + 1
        if next_index > self.pipeline.max_offline_index():
            return None
        new_plan = self.pipeline.split_at(next_index)
        moved = self.pipeline.steps[self.plan.split_index].name
        return self._config_rewrite(
            "materialize-further",
            f"materialise {new_plan.strategy_name!r} instead: run step "
            f"{moved!r} once offline rather than every epoch",
            new_plan, self.config)

    # -- warm-epoch predictors ----------------------------------------------

    def _memory_rate(self) -> float:
        threads = max(min(self.config.threads,
                          self.pipeline.sample_count), 1)
        return min(self.environment.memory_stream_bw,
                   self.environment.memory_bw / threads)

    def _predict_warm_from_memory(self) -> Optional[float]:
        """Warm-epoch throughput once storage reads hit the page cache.

        Trace-based what-if: replace the measured open+read thread-time
        with a memory-bus transfer of the same bytes, keep everything
        else, and re-divide by the thread width.
        """
        trace = self.profile.trace
        samples = self.pipeline.sample_count
        if trace is None or trace.total_thread_seconds <= 0:
            storage = min(self.attribution.storage, 0.9)
            return (self.measured / (1.0 - storage)
                    if self.measured > 0 else None)
        mem_seconds = trace.bytes_from_storage / self._memory_rate()
        new_total = (trace.total_thread_seconds - trace.open_seconds
                     - trace.read_seconds + mem_seconds)
        # The per-sample hand-off stays serialized however fast reads
        # become, so the warm epoch can never beat the dispatch bound.
        duration = max(new_total / trace.threads,
                       samples * cal.DISPATCH_COST)
        return samples / duration if duration > 0 else None

    def _predict_app_cache(self) -> Optional[float]:
        """Warm-epoch throughput with final tensors cached in RAM."""
        pipeline = self.pipeline
        samples = pipeline.sample_count
        threads = max(min(self.config.threads, samples), 1)
        tensor_bytes = pipeline.representations[
            pipeline.max_offline_index()].bytes_per_sample
        nondet = [step for step in self.plan.online_steps
                  if not step.deterministic]
        native = sum(step.cpu_seconds for step in nondet
                     if not step.holds_gil)
        external = sum(step.cpu_seconds for step in nondet
                       if step.holds_gil)
        per_sample = (tensor_bytes / self._memory_rate() + native
                      + external + cal.APP_CACHE_ITER_COST)
        duration = max(samples * per_sample / threads,
                       samples * cal.APP_CACHE_ITER_COST,  # dispatch serial
                       samples * external)                 # GIL serial
        return samples / duration if duration > 0 else None
