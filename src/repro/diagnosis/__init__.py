"""Bottleneck diagnosis: resource attribution + rewrite recommendation.

The sweep engine answers *which strategy is fastest*; this package
answers the paper's title question -- **where is my training
bottleneck?** -- and, following Plumber (Kuchnik et al., MLSys 2022)
and the data-stall analysis of Mohan et al. (VLDB 2021), *what to do
about it*:

* :mod:`repro.diagnosis.attribution` -- fractions of epoch thread-time
  bound on CPU, storage reads, decode work and stall, measured from the
  simulator's :class:`~repro.sim.trace.ResourceTrace` (analytic-model
  fallback for traceless backends).
* :mod:`repro.diagnosis.rewrites` -- ranked, actionable rewrites
  (prefetch insertion, cache relocation, parallelism, codec switches,
  split movement) with anchored predicted speedups.
* :mod:`repro.diagnosis.doctor` -- :class:`BottleneckDoctor`, which
  profiles, attributes, recommends, and verifies top recommendations by
  re-running them through the existing backends.
"""

from repro.diagnosis.attribution import (CATEGORIES, ResourceAttribution,
                                         attribute)
from repro.diagnosis.doctor import (BottleneckDoctor, PipelineDiagnosis,
                                    StrategyDiagnosis, VerifiedRewrite,
                                    verification_report)
from repro.diagnosis.rewrites import Rewrite, propose_rewrites

__all__ = [
    "BottleneckDoctor",
    "CATEGORIES",
    "PipelineDiagnosis",
    "ResourceAttribution",
    "Rewrite",
    "StrategyDiagnosis",
    "VerifiedRewrite",
    "attribute",
    "propose_rewrites",
    "verification_report",
]
