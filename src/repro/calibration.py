"""Fitted performance constants and their derivations.

The simulator is *general* -- threads, links, locks, caches -- but its
constants are *data*, fitted from the measurements the paper publishes.
Every constant below carries the derivation chain from the paper's own
numbers so the fit is auditable.

Conventions: sizes in bytes, times in seconds, bandwidths in bytes/second.
"All-thread" figures assume the paper's 8-VCPU VM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB, MB, MS, US

# ---------------------------------------------------------------------------
# Client VM (paper Sec. 3.3: 8 VCPUs, 80 GB DDR4, Ubuntu 18.04)
# ---------------------------------------------------------------------------

#: Number of reader/worker threads used by default in all experiments.
DEFAULT_THREADS = 8

#: VM cores.
CORES = 8

#: VM RAM; the binary fits/doesn't-fit caching threshold of Sec. 4.2.
RAM_BYTES = 80 * GB

#: Aggregate memory bandwidth.  sysbench on the paper's VM reports
#: 166 GB/s; the app-cache sweep (Fig. 9: 15 GB in 0.1 s at 20.5 MB
#: samples) implies ~150 GB/s effective -- we use the effective figure.
MEMORY_BW = 150 * GB

#: Per-thread memory stream bandwidth (DDR4 single-stream).
MEMORY_STREAM_BW = 20 * GB

# ---------------------------------------------------------------------------
# Pipeline runtime overheads
# ---------------------------------------------------------------------------

#: Serialized per-sample dispatch cost of the pipeline runtime.
#: Fit: NILM ``aggregated`` plateaus at 9053 SPS regardless of threads
#: (Fig. 8e) => ~110 us of unavoidable serialized work per sample.  The
#: Fig. 9 small-sample plateau (~173 s for 1.5 M samples across cache
#: levels) confirms the same constant.
DISPATCH_COST = 110 * US

#: Extra dispatch-lock hold time per queued thread (context-switch convoy;
#: Sec. 4.4 obs. 1: 100 k context switches/s at 0.01 MB samples).  Small:
#: the paper's own data shows the serialized hand-off itself (110 us even
#: single-threaded, cf. Fig. 9's ~8.6 k SPS plateau at every cache level)
#: is what erases multi-thread gains on tiny samples, with contention
#: adding only a few percent (NILM aggregated: 9053 -> 9890 SPS).
DISPATCH_CONVOY = 2 * US

#: Per-sample, per-thread runtime bookkeeping that parallelises across
#: threads (unlike the dispatch lock): a fixed iterator cost plus a
#: per-byte buffer-management cost (~2.9 GB/s of copies).  Fit: the
#: residual between per-thread io+deser+step sums and the measured
#: throughputs across all seven pipelines scales with sample size
#: (~0.4 ms at CV's ~1 MB samples, negligible at NILM's 0.01 MB).
RUNTIME_FIXED_PER_SAMPLE = 30 * US
RUNTIME_PER_BYTE = 0.35 * MS / MB


def runtime_overhead(bytes_per_sample: float) -> float:
    """Per-sample, per-thread runtime bookkeeping cost in seconds."""
    return RUNTIME_FIXED_PER_SAMPLE + bytes_per_sample * RUNTIME_PER_BYTE

#: Per-sample cost when iterating an application-level cache
#: (tf.data.Dataset.cache in RAM).  Fit: Fig. 9 app-cache, 0.01 MB
#: samples: 138.3 s / 1.5 M samples = 92 us.
APP_CACHE_ITER_COST = 90 * US

#: Convoy overhead for GIL-bound (external library) steps.  Larger than
#: the dispatch convoy because a py_function round-trip parks the whole
#: interpreter; produces the <1.0 speedups of Fig. 12g/12i and Fig. 13a.
GIL_CONVOY = 25 * US

# ---------------------------------------------------------------------------
# Record deserialization (TFRecord/protobuf -> tensor)
# ---------------------------------------------------------------------------

#: Per-thread deserialization bandwidth.  Fit: Fig. 9 sys-cache at
#: 20.5 MB samples processes 15 GB in 4.8 s on 8 threads => 3.2 GB/s
#: aggregate => 0.4 GB/s per thread.  Cross-checked against CV
#: ``decoded`` (746 SPS) and CV2-JPG ``pixel-centered`` epoch 1 (2044 SPS).
DESER_BW_PER_THREAD = 0.4 * GB

#: Fixed per-record deserialization setup cost.
#: Fit: residual of the Fig. 9 sys-cache small-sample rows.
DESER_FIXED = 20 * US

#: Per-record serialization cost is symmetric for our purposes.
SER_BW_PER_THREAD = 0.5 * GB

# ---------------------------------------------------------------------------
# Compression (paper Sec. 4.3; GZIP=RFC1952, ZLIB=RFC1950)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompressionCosts:
    """Per-thread compression codec speeds (uncompressed bytes/second)."""

    name: str
    compress_bw: float
    decompress_bw: float


#: Fit: offline-time inflation of Fig. 10 (1.1x-13.5x depending on space
#: saving) and the pixel-centered online gains (1.6-2.4x) require
#: compression ~30 MB/s and decompression ~400 MB/s per thread -- in line
#: with single-threaded zlib level 6 on 2015-era Xeons.
GZIP_COSTS = CompressionCosts("GZIP", compress_bw=30 * MB,
                              decompress_bw=400 * MB)

#: ZLIB is the same DEFLATE stream minus gzip framing: marginally faster.
ZLIB_COSTS = CompressionCosts("ZLIB", compress_bw=33 * MB,
                              decompress_bw=420 * MB)

# ---------------------------------------------------------------------------
# Per-pipeline step CPU costs (single-thread seconds per sample)
# ---------------------------------------------------------------------------
# CV (ILSVRC2012).  Fit: ``concatenated`` = 962 SPS on 8 threads with the
# ~6x thread speedup of Fig. 12a implies ~6.2 ms of single-thread CPU per
# sample across decode+resize+center+crop; the split between the steps is
# anchored by the per-strategy throughputs (decoded 746, resized 1789,
# pixel-centered 576 SPS).
CV_DECODE_JPEG = 3.6 * MS
CV_RESIZE = 1.7 * MS
CV_PIXEL_CENTER = 0.6 * MS
CV_RANDOM_CROP = 0.3 * MS
CV_GREYSCALE = 0.4 * MS  # Sec. 4.6 case study step

# CV2 (Cube++, ~4.5 MP images vs ~0.2 MP in ILSVRC).  Fit: CV2-JPG
# unprocessed 88 SPS => ~19 ms total CPU; decode dominates.
CV2_DECODE_JPEG = 16.0 * MS
CV2_DECODE_PNG = 294.0 * MS  # CV2-PNG unprocessed 15 SPS (16-bit PNGs)
CV2_RESIZE = 2.0 * MS
CV2_PIXEL_CENTER = 0.6 * MS
CV2_RANDOM_CROP = 0.3 * MS

# NLP (OpenWebText / GPT-2).  Fit: unprocessed & concatenated stall at
# 6 SPS regardless of storage (GIL-bound HTML extraction: 1/166 ms);
# decoded 251 SPS (bpe: GIL); bpe-encoded 1726 SPS (embed: native).
NLP_DECODE_HTML = 166.0 * MS   # external (newspaper)
NLP_BPE_ENCODE = 3.3 * MS      # external (Python BPE)
NLP_EMBED = 4.4 * MS           # native embedding lookup

# NILM (CREAM).  Fit: unprocessed 42 SPS = 1/(5.8+18) ms with both steps
# GIL-bound; decoded 55 SPS = 1/18 ms.
NILM_DECODE_HDF5 = 5.8 * MS    # external (h5py)
NILM_AGGREGATE = 18.0 * MS     # external (NumPy reactive power/RMS/CUSUM)

# Audio.  Per-second-of-audio costs are consistent across both datasets:
# MP3 (2.4 s clips): sys-cached unprocessed = 188 SPS => 42.5 ms decode;
# FLAC (12.5 s clips): decoded = 47 SPS => ~165 ms STFT+mel.
AUDIO_DECODE_PER_SECOND = 17.3 * MS   # native codec decode
AUDIO_STFT_PER_SECOND = 13.7 * MS     # native STFT + 80-bin mel bank

# Synthetic RMS step (Fig. 13): NumPy is 19x faster per byte but
# GIL-bound; the framework-native version scales but is slow.
RMS_NUMPY_PER_MB = 43.0 * MS / 1.0    # seconds per MB, external
RMS_NATIVE_PER_MB = 825.0 * MS / 1.0  # seconds per MB, native

# ---------------------------------------------------------------------------
# Shuffling (paper Sec. 4.5)
# ---------------------------------------------------------------------------

#: Constant per-sample shuffle-buffer overhead.  The paper reports the
#: per-sample delta between shuffling and not shuffling as 9.6 (+-0.5)
#: per sample independent of sample size; with their sample counts this
#: is consistent with microseconds-per-sample of bookkeeping.
SHUFFLE_PER_SAMPLE = 9.6 * US

#: One-time shuffle-buffer allocation cost, amortised over the run
#: ("the initial call to allocate a buffer is amortized with a bigger
#: sample count").
SHUFFLE_BUFFER_ALLOC = 120 * MS

# ---------------------------------------------------------------------------
# Simulation fidelity knobs
# ---------------------------------------------------------------------------

#: Upper bound on simulated jobs per run; samples are batched into jobs so
#: full-dataset runs (1.3 M samples) stay tractable.  2000 jobs keeps the
#: batching error well under the paper's own +-5% run-to-run variance.
MAX_JOBS_PER_RUN = 2000

#: Page-cache share of RAM (kernel + process overhead excluded).
PAGE_CACHE_FRACTION = 0.94
