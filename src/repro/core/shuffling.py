"""Shuffling analysis (paper Sec. 4.5).

The paper profiles buffer-based with-replacement shuffling (reservoir
style) and finds:

* the per-sample shuffle overhead is constant -- independent of sample
  size -- so total shuffle cost is linear in sample count;
* the one-time buffer allocation amortises with larger sample counts
  (per-sample time *decreases* as counts grow);
* therefore shuffling should not participate in strategy selection, but
  should be placed after the online step with the *smallest* data size:
  a fixed-byte buffer then holds the most samples, maximising shuffle
  entropy and giving a better gradient approximation.

This module provides the cost model, an entropy estimator for a buffer
position, and :func:`recommend_shuffle_position`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import calibration as cal
from repro.errors import PipelineError
from repro.pipelines.base import PipelineSpec, SplitPlan


def shuffle_overhead_seconds(sample_count: int) -> float:
    """Total shuffle cost: linear per-sample term plus buffer allocation."""
    if sample_count < 0:
        raise PipelineError("negative sample count")
    if sample_count == 0:
        return 0.0
    return (cal.SHUFFLE_BUFFER_ALLOC
            + sample_count * cal.SHUFFLE_PER_SAMPLE)


def per_sample_shuffle_seconds(sample_count: int) -> float:
    """Amortised per-sample cost; decreases toward the constant term.

    Reproduces the paper's observation that per-sample time falls with
    increasing sample counts as the allocation amortises.
    """
    if sample_count <= 0:
        raise PipelineError("sample count must be positive")
    return shuffle_overhead_seconds(sample_count) / sample_count


def buffer_capacity_samples(buffer_bytes: float,
                            bytes_per_sample: float) -> int:
    """How many samples a fixed-size buffer holds at a representation."""
    if bytes_per_sample <= 0:
        raise PipelineError("bytes per sample must be positive")
    return max(1, int(buffer_bytes // bytes_per_sample))


def shuffle_entropy_bits(buffer_samples: int) -> float:
    """Entropy of the next-sample choice: log2 of the buffer occupancy.

    With-replacement buffer shuffling picks uniformly among the buffered
    samples, so a fuller buffer means higher entropy and a better
    approximation of the "true" gradient (paper Sec. 4.5).
    """
    if buffer_samples < 1:
        raise PipelineError("buffer must hold at least one sample")
    return math.log2(buffer_samples)


@dataclass(frozen=True)
class ShufflePlacement:
    """Advice for where to shuffle inside a chosen strategy."""

    after_step: str
    bytes_per_sample: float
    buffer_samples: int
    entropy_bits: float


def recommend_shuffle_position(plan: SplitPlan,
                               buffer_bytes: float) -> ShufflePlacement:
    """Pick the online position with the smallest per-sample size.

    Considers the materialised representation and every representation
    produced by an online step; the smallest one packs the most samples
    into ``buffer_bytes``.
    """
    pipeline = plan.pipeline
    candidates = []
    for index in range(plan.split_index, len(pipeline.representations)):
        rep = pipeline.representations[index]
        step_name = ("load" if index == plan.split_index
                     else pipeline.steps[index - 1].name)
        candidates.append((rep.bytes_per_sample, step_name))
    size, step_name = min(candidates, key=lambda pair: pair[0])
    samples = buffer_capacity_samples(buffer_bytes, size)
    return ShufflePlacement(
        after_step=step_name,
        bytes_per_sample=size,
        buffer_samples=samples,
        entropy_bits=shuffle_entropy_bits(samples),
    )


def shuffle_cost_frame(sample_counts: list[int]):
    """Per-sample shuffle cost across counts (the paper's measurement)."""
    from repro.core.frame import Frame
    return Frame.from_records([
        {
            "sample_count": count,
            "total_shuffle_s": shuffle_overhead_seconds(count),
            "per_sample_us": per_sample_shuffle_seconds(count) * 1e6,
        }
        for count in sample_counts
    ])
