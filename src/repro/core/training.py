"""Training consumers and stall analysis (paper Fig. 3).

Fig. 3 compares ResNet-50's data ingestion rate on different accelerators
against the throughput of the Table 1 preprocessing strategies.  A
training process *stalls* whenever the preprocessing throughput T4 is
below the accelerator's consumption rate; the effective training
throughput is ``min(T4, device_rate)``.

Device rates follow the sources the paper cites (NVIDIA's published
training benchmarks [64] and Ying et al. for TPUv3 [94]); they are
approximate by nature and marked as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.frame import Frame
from repro.errors import ProfilingError


@dataclass(frozen=True)
class TrainingConsumer:
    """An accelerator training ResNet-50, consuming samples/second."""

    device: str
    ingest_sps: float
    source: str = "NVIDIA training benchmarks"

    def effective_throughput(self, preprocessing_sps: float) -> float:
        """Achievable training rate given the preprocessing throughput."""
        if preprocessing_sps < 0:
            raise ProfilingError("negative preprocessing throughput")
        return min(self.ingest_sps, preprocessing_sps)

    def stall_fraction(self, preprocessing_sps: float) -> float:
        """Fraction of the accelerator's capacity left idle by stalls."""
        effective = self.effective_throughput(preprocessing_sps)
        return 1.0 - effective / self.ingest_sps

    def is_stalled(self, preprocessing_sps: float) -> bool:
        return preprocessing_sps < self.ingest_sps


#: ResNet-50 ingestion rates per device (approximate, samples/second).
RESNET50_CONSUMERS = (
    TrainingConsumer("A10", 1_270),
    TrainingConsumer("V100", 1_457),
    TrainingConsumer("A30", 1_677),
    TrainingConsumer("A100", 2_981),
    TrainingConsumer("4xA100", 11_000),
    TrainingConsumer("TPUv3-8", 8_000, source="Ying et al. [94]"),
)


def stall_analysis(strategy_throughputs: dict[str, float],
                   consumers: tuple[TrainingConsumer, ...] = RESNET50_CONSUMERS,
                   ) -> Frame:
    """Cross every strategy with every device (the Fig. 3 grid).

    ``strategy_throughputs`` maps strategy name -> T4 samples/second
    (the paper uses the three Table 1 strategies).
    """
    records = []
    for device in consumers:
        for strategy, throughput in strategy_throughputs.items():
            records.append({
                "device": device.device,
                "device_sps": device.ingest_sps,
                "strategy": strategy,
                "preprocessing_sps": throughput,
                "effective_sps": device.effective_throughput(throughput),
                "stall_pct": 100.0 * device.stall_fraction(throughput),
                "stalled": device.is_stalled(throughput),
            })
    return Frame.from_records(records)


def devices_unblocked_by(strategy_throughput: float,
                         consumers: tuple[TrainingConsumer, ...] =
                         RESNET50_CONSUMERS) -> list[str]:
    """Devices that run stall-free at the given preprocessing rate.

    The paper's Fig. 3 point: the tuned CV strategy (1789 SPS) feeds the
    A10, A30 and V100 without stalls, while the naive strategies starve
    every device.
    """
    return [device.device for device in consumers
            if not device.is_stalled(strategy_throughput)]
