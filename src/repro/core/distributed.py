"""Distributed preprocessing and concurrent training (paper Sec. 7).

Two discussion points of the paper, made quantitative on top of the
calibrated model:

* **Multi-worker offline preprocessing** -- "preprocessing a dataset is
  a trivially parallelizable task by splitting the dataset into equal
  chunks".  Workers scale the CPU side linearly, but they share the
  storage cluster's aggregate bandwidth and metadata service, so
  read/write-bound phases stop scaling -- exactly the kind of hidden
  wall PRESTO exists to expose.
* **Fan-out to concurrent trainers** -- "the throughput T4 can be fanned
  out to all training jobs ... if the network can not handle the
  duplicated load it will become a new bottleneck".  Serving J trainers
  multiplies the per-epoch read volume by J against the same link.

These closed forms are the *optimistic bounds*; the serving layer
(:mod:`repro.serve`) now co-simulates the same scenarios with J jobs as
discrete-event processes on the shared cluster.
:func:`repro.serve.fanout.fan_out_frame_simulated` cross-checks
:func:`estimate_fan_out` against the simulation: the two agree in the
uncontended single-tenant limit (pinned by
``tests/serve/test_crosscheck.py``), and the simulation additionally
charges metadata queueing and CPU-pool contention the formulas cannot
see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import calibration as cal
from repro.backends.base import Environment, RunConfig
from repro.core.frame import Frame
from repro.errors import ProfilingError
from repro.formats.compression import get_codec
from repro.pipelines.base import SplitPlan


@dataclass(frozen=True)
class DistributedOfflineEstimate:
    """Offline preprocessing time with W parallel workers."""

    workers: int
    cpu_seconds: float          # per-worker CPU wall time
    read_seconds: float         # shared-storage read wall time
    write_seconds: float        # shared-storage write wall time
    open_seconds: float         # metadata service wall time

    @property
    def duration(self) -> float:
        """Workers overlap phases; the binding shared resource rules."""
        return max(self.cpu_seconds, self.read_seconds, self.write_seconds,
                   self.open_seconds)

    @property
    def bottleneck(self) -> str:
        parts = {
            "worker-cpu": self.cpu_seconds,
            "storage-read": self.read_seconds,
            "storage-write": self.write_seconds,
            "metadata": self.open_seconds,
        }
        return max(parts, key=parts.get)


def estimate_distributed_offline(plan: SplitPlan, config: RunConfig,
                                 workers: int,
                                 environment: Environment | None = None,
                                 ) -> DistributedOfflineEstimate:
    """Offline wall time with ``workers`` VMs sharing one storage cluster.

    Each worker owns ``config.threads`` cores; CPU work divides across
    workers, while reads, writes and opens contend on the cluster.
    """
    if workers < 1:
        raise ProfilingError("need at least one worker")
    if plan.is_unprocessed:
        raise ProfilingError("the unprocessed strategy has no offline phase")
    environment = environment or Environment()
    storage = environment.storage
    pipeline = plan.pipeline
    count = pipeline.sample_count
    source = pipeline.source
    codec = get_codec(config.compression)
    out_bytes = plan.materialized.bytes_per_sample
    stored_bytes = plan.materialized.compressed_bytes_per_sample(
        config.compression)

    native = sum(step.cpu_seconds for step in plan.offline_steps
                 if not step.holds_gil)
    external = sum(step.cpu_seconds for step in plan.offline_steps
                   if step.holds_gil)
    serialize = cal.DESER_FIXED + out_bytes / cal.SER_BW_PER_THREAD
    compress = (out_bytes / codec.costs.compress_bw if codec else 0.0)
    per_sample_parallel = (native + serialize + compress
                           + cal.runtime_overhead(source.bytes_per_sample))
    # GIL-bound steps serialize per worker, not per thread.
    cores = min(config.threads, environment.cores)
    cpu_seconds = count * (per_sample_parallel / (workers * cores)
                           + external / workers)

    read_seconds = count * source.bytes_per_sample / storage.aggregate_bw
    write_seconds = count * stored_bytes / storage.write_bw
    opens = (source.n_files / count if source.n_files else 0.0)
    open_seconds = (count * opens * storage.pipeline_open_latency
                    / storage.metadata_slots)
    return DistributedOfflineEstimate(
        workers=workers,
        cpu_seconds=cpu_seconds,
        read_seconds=read_seconds,
        write_seconds=write_seconds,
        open_seconds=open_seconds,
    )


def offline_scaling_frame(plan: SplitPlan, config: RunConfig,
                          worker_counts=(1, 2, 4, 8, 16),
                          environment: Environment | None = None) -> Frame:
    """Offline duration and bottleneck across worker counts."""
    records = []
    base = None
    for workers in worker_counts:
        estimate = estimate_distributed_offline(plan, config, workers,
                                                environment)
        if base is None:
            base = estimate.duration
        records.append({
            "workers": workers,
            "hours": round(estimate.duration / 3600, 2),
            "speedup": round(base / estimate.duration, 2),
            "bottleneck": estimate.bottleneck,
        })
    return Frame.from_records(records)


@dataclass(frozen=True)
class FanOutEstimate:
    """Serving J concurrent trainers from one materialised dataset."""

    trainers: int
    per_trainer_sps: float
    link_bound_sps: float

    @property
    def delivered_sps(self) -> float:
        """What each trainer actually receives."""
        return min(self.per_trainer_sps, self.link_bound_sps)

    @property
    def network_is_bottleneck(self) -> bool:
        return self.link_bound_sps < self.per_trainer_sps


def estimate_fan_out(plan: SplitPlan, config: RunConfig, trainers: int,
                     single_job_sps: float,
                     environment: Environment | None = None,
                     ) -> FanOutEstimate:
    """Per-trainer throughput when T4 is fanned out to ``trainers`` jobs.

    ``single_job_sps`` is the profiled single-trainer T4.  The shared
    link divides its aggregate bandwidth by the duplicated read volume
    (paper Sec. 7, "Applicability for concurrent training").
    """
    if trainers < 1:
        raise ProfilingError("need at least one trainer")
    if single_job_sps <= 0:
        raise ProfilingError("single-job throughput must be positive")
    environment = environment or Environment()
    bytes_per_sample = plan.materialized.compressed_bytes_per_sample(
        config.compression) if not plan.is_unprocessed \
        else plan.materialized.bytes_per_sample
    link_bound = (environment.storage.aggregate_bw
                  / (bytes_per_sample * trainers)
                  if bytes_per_sample > 0 else float("inf"))
    return FanOutEstimate(
        trainers=trainers,
        per_trainer_sps=single_job_sps,
        link_bound_sps=link_bound,
    )


def fan_out_frame(plan: SplitPlan, config: RunConfig, single_job_sps: float,
                  trainer_counts=(1, 2, 4, 8, 16),
                  environment: Environment | None = None) -> Frame:
    """Per-trainer delivered throughput across fan-out widths."""
    records = []
    for trainers in trainer_counts:
        estimate = estimate_fan_out(plan, config, trainers, single_job_sps,
                                    environment)
        records.append({
            "trainers": trainers,
            "delivered_sps": round(estimate.delivered_sps, 1),
            "network_bound": estimate.network_is_bottleneck,
        })
    return Frame.from_records(records)
