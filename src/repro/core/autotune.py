"""Automatic strategy tuning.

PRESTO's end-to-end flow: enumerate the strategy grid, pre-screen it with
the cheap analytic model, profile the survivors on the accurate backend,
and rank with the user's objective weights.  Pre-screening mirrors the
paper's suggestion of probing infrastructure cheaply before committing to
full profiling runs (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backends.analytic import AnalyticModel
from repro.backends.base import Backend, Environment
from repro.core.analysis import ObjectiveWeights, StrategyAnalysis
from repro.core.frame import Frame
from repro.core.profiler import StrategyProfile, StrategyProfiler
from repro.core.strategy import Strategy, enumerate_strategies
from repro.errors import ProfilingError
from repro.pipelines.base import PipelineSpec


@dataclass
class TuningReport:
    """Outcome of one auto-tuning session."""

    pipeline: str
    weights: ObjectiveWeights
    candidates: int
    screened: int
    best: StrategyProfile
    profiles: list[StrategyProfile] = field(default_factory=list)

    @property
    def best_strategy(self) -> Strategy:
        return self.best.strategy

    def frame(self) -> Frame:
        return StrategyProfiler.to_frame(self.profiles)

    def describe(self) -> str:
        best = self.best
        return (
            f"pipeline {self.pipeline}: profiled {self.screened}/"
            f"{self.candidates} candidate strategies; best = "
            f"{best.strategy.name} at {best.throughput:.0f} SPS "
            f"({best.storage_bytes / 1e9:.1f} GB stored)"
        )


class AutoTuner:
    """Grid search with analytic pre-screening.

    ``jobs`` and ``cache`` are forwarded to the profiler's sweep engine:
    survivors of the analytic screen profile in parallel, and repeated
    tuning sessions reuse memoized profiles.
    """

    def __init__(self, backend: Backend,
                 environment: Optional[Environment] = None,
                 runs_total: int = 1,
                 jobs: Optional[int] = None,
                 cache=None):
        self.backend = backend
        self.profiler = StrategyProfiler(backend, runs_total=runs_total,
                                         jobs=jobs, cache=cache)
        self.analytic = AnalyticModel(environment
                                      or getattr(backend, "environment",
                                                 None)
                                      or Environment())

    def tune(self, pipeline: PipelineSpec,
             weights: Optional[ObjectiveWeights] = None,
             threads: Sequence[int] = (8,),
             compressions: Sequence[Optional[str]] = (None, "GZIP", "ZLIB"),
             cache_modes: Sequence[str] = ("none",),
             epochs: int = 1,
             screen_keep: float = 0.5,
             sample_count: Optional[int] = None) -> TuningReport:
        """Search the strategy grid for ``pipeline``.

        ``screen_keep`` is the fraction of candidates (by analytic
        throughput estimate) that survive to full profiling; 1.0 disables
        screening.
        """
        if not 0.0 < screen_keep <= 1.0:
            raise ProfilingError("screen_keep must be in (0, 1]")
        weights = weights or ObjectiveWeights()
        candidates = enumerate_strategies(
            pipeline, threads=threads, compressions=compressions,
            cache_modes=cache_modes, epochs=epochs)
        survivors = self._screen(candidates, screen_keep)
        profiles = self.profiler.profile_grid(survivors,
                                              sample_count=sample_count)
        analysis = StrategyAnalysis(profiles)
        return TuningReport(
            pipeline=pipeline.name,
            weights=weights,
            candidates=len(candidates),
            screened=len(survivors),
            best=analysis.best(weights),
            profiles=profiles,
        )

    def _screen(self, candidates: list[Strategy],
                keep: float) -> list[Strategy]:
        return screen_strategies(candidates, keep, self.analytic)


def screen_strategies(candidates: list[Strategy], keep: float,
                      model: AnalyticModel) -> list[Strategy]:
    """Keep the analytically-most-promising fraction of the grid.

    Every distinct split point always survives (screening tunes the
    knob dimensions, never silently removes a split from the search).
    Shared by :class:`AutoTuner` and the declarative API's
    :func:`repro.api.plan.build_plan`, so planned and executed job
    counts can never drift apart.
    """
    if keep >= 1.0 or len(candidates) <= 2:
        return candidates
    estimated = [
        (model.estimate(strategy.plan, strategy.config).throughput,
         index, strategy)
        for index, strategy in enumerate(candidates)
    ]
    n_keep = max(2, int(round(len(candidates) * keep)))
    by_quality = sorted(estimated, key=lambda item: -item[0])
    kept = {index for _, index, _ in by_quality[:n_keep]}
    # Guarantee split-point coverage.
    seen_splits: dict[str, int] = {}
    for estimate, index, strategy in by_quality:
        name = strategy.split_name
        if name not in seen_splits:
            seen_splits[name] = index
    kept.update(seen_splits.values())
    return [strategy for index, strategy in
            enumerate(candidates) if index in kept]
