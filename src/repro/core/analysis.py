"""Strategy ranking with the paper's weighted objective function.

Paper Sec. 3.1: ``StrategyAnalysis`` normalizes each metric vector
(preprocessing time p, storage consumption s, throughput t) to [0, 1] by
min-max and combines them with user weights (w_p, w_s, w_t).

We make the optimisation direction explicit: preprocessing time and
storage are *costs* (lower is better), throughput is a *benefit*.  The
score of strategy i is::

    score_i = w_t * t_norm_i + w_p * (1 - p_norm_i) + w_s * (1 - s_norm_i)

maximised over strategies.  The paper's example presets are provided:
``(1, 0, 1)`` for the hyperparameter-tuning-before-a-deadline scenario
and ``(0, 0, 1)`` (throughput only) as the recommended default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.frame import Frame
from repro.core.profiler import StrategyProfile
from repro.errors import ProfilingError


@dataclass(frozen=True)
class ObjectiveWeights:
    """User-defined metric weights (w_p, w_s, w_t) -- paper Sec. 3.1."""

    preprocessing: float = 0.0
    storage: float = 0.0
    throughput: float = 1.0

    def __post_init__(self):
        if min(self.preprocessing, self.storage, self.throughput) < 0:
            raise ProfilingError("objective weights must be non-negative")
        if self.preprocessing == self.storage == self.throughput == 0:
            raise ProfilingError("at least one weight must be positive")


#: The paper's recommended default: sort by throughput only.
THROUGHPUT_ONLY = ObjectiveWeights(0.0, 0.0, 1.0)

#: The paper's deadline scenario: fast preprocessing and high throughput,
#: storage is irrelevant.
DEADLINE = ObjectiveWeights(1.0, 0.0, 1.0)

#: A storage-constrained cluster: keep the materialised dataset small.
STORAGE_BUDGET = ObjectiveWeights(0.0, 1.0, 1.0)


class StrategyAnalysis:
    """Summarises profiles and picks the best strategy for an objective."""

    def __init__(self, profiles: Sequence[StrategyProfile]):
        if not profiles:
            raise ProfilingError("no profiles to analyse")
        self.profiles = list(profiles)
        self.frame = Frame.from_records(
            [profile.to_record() for profile in profiles])

    # -- scoring ------------------------------------------------------------

    def scores(self, weights: ObjectiveWeights) -> list[float]:
        """Objective score per profile (higher is better)."""
        p_norm = self.frame.normalized("preprocessing_s")
        s_norm = self.frame.normalized("storage_gb")
        t_norm = self.frame.normalized("throughput_sps")
        return [
            weights.throughput * t
            + weights.preprocessing * (1.0 - p)
            + weights.storage * (1.0 - s)
            for p, s, t in zip(p_norm, s_norm, t_norm)
        ]

    def ranked(self, weights: Optional[ObjectiveWeights] = None) -> Frame:
        """Result frame with a ``score`` column, best strategy first."""
        weights = weights or THROUGHPUT_ONLY
        scores = self.scores(weights)
        enriched = Frame.from_records([
            {**row, "score": score}
            for row, score in zip(self.frame.rows(), scores)
        ])
        return enriched.sort_by("score", descending=True)

    def best(self, weights: Optional[ObjectiveWeights] = None
             ) -> StrategyProfile:
        """The winning profile under ``weights`` (ties: higher throughput)."""
        weights = weights or THROUGHPUT_ONLY
        scored = list(zip(self.scores(weights), self.profiles))
        return max(scored,
                   key=lambda pair: (pair[0], pair[1].throughput))[1]

    def best_strategy_name(self,
                           weights: Optional[ObjectiveWeights] = None) -> str:
        return self.best(weights).strategy.split_name

    # -- reporting ----------------------------------------------------------

    def summary(self, weights: Optional[ObjectiveWeights] = None) -> str:
        """Markdown summary: the ranked table plus the recommendation."""
        weights = weights or THROUGHPUT_ONLY
        table = self.ranked(weights).select([
            "strategy", "threads", "compression", "cache_mode",
            "throughput_sps", "preprocessing_s", "storage_gb", "score",
        ]).to_markdown()
        best = self.best(weights)
        return (
            f"{table}\n\n"
            f"Recommended strategy: {best.strategy.name} "
            f"({best.throughput:.0f} SPS, "
            f"{best.storage_bytes / 1e9:.1f} GB, "
            f"{best.preprocessing_seconds / 3600:.2f} h preprocessing)"
        )
