"""Dataset-growth extrapolation (paper Sec. 7, "Datasets can grow").

The paper argues PRESTO's profile of a static dataset remains valuable
as the dataset grows -- unless growth pushes a representation across a
hardware threshold, at which point the trade-offs flip.  This module
makes that concrete:

* :func:`extrapolate_profile` scales a profiled strategy to a grown
  dataset (storage and offline time scale linearly; throughput is
  per-sample and unchanged *except* for cache-fit effects);
* :func:`find_threshold_crossings` reports the growth factors at which
  each representation crosses RAM (caching stops working) and at which
  cached strategies lose their epoch-1 advantage;
* :func:`growth_report` re-ranks the strategies across growth factors
  and flags where the recommended strategy changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.backends.base import Environment, RunConfig
from repro.core.frame import Frame
from repro.errors import ProfilingError
from repro.pipelines.base import PipelineSpec
from repro.units import GB


@dataclass(frozen=True)
class GrowthEstimate:
    """A strategy's projected metrics at a grown dataset size."""

    strategy: str
    growth_factor: float
    storage_bytes: float
    offline_seconds: float
    throughput_sps: float
    fits_in_ram: bool
    cacheable_before: bool

    @property
    def caching_lost(self) -> bool:
        """True when growth pushed this representation out of RAM."""
        return self.cacheable_before and not self.fits_in_ram


def extrapolate_profile(profile, growth_factor: float,
                        environment: Environment) -> GrowthEstimate:
    """Project one profiled strategy to ``growth_factor`` x the dataset.

    Per-sample behaviour (throughput) is size-invariant in the paper's
    model; total storage and offline preprocessing scale linearly.
    """
    if growth_factor <= 0:
        raise ProfilingError("growth factor must be positive")
    run = profile.result
    grown_storage = profile.storage_bytes * growth_factor
    return GrowthEstimate(
        strategy=profile.strategy.split_name,
        growth_factor=growth_factor,
        storage_bytes=grown_storage,
        offline_seconds=profile.preprocessing_seconds * growth_factor,
        throughput_sps=profile.throughput,
        fits_in_ram=grown_storage <= environment.ram_bytes,
        cacheable_before=profile.storage_bytes <= environment.ram_bytes,
    )


def find_threshold_crossings(pipeline: PipelineSpec,
                             environment: Environment,
                             max_factor: float = 64.0) -> Frame:
    """Growth factor at which each representation stops fitting in RAM.

    A factor of 1.0 means it already exceeds RAM; ``> max_factor`` means
    it stays cacheable throughout the considered horizon.
    """
    records = []
    for plan in pipeline.split_points():
        rep = plan.materialized
        total = rep.total_bytes(pipeline.sample_count)
        if total <= 0:
            raise ProfilingError(f"empty representation {rep.name!r}")
        crossing = environment.ram_bytes / total
        records.append({
            "strategy": plan.strategy_name,
            "storage_gb": round(total / GB, 2),
            "ram_crossing_factor": (round(crossing, 2)
                                    if crossing <= max_factor
                                    else float("inf")),
            "cacheable_now": total <= environment.ram_bytes,
        })
    return Frame.from_records(records)


def growth_report(backend, pipeline: PipelineSpec,
                  growth_factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
                  config: RunConfig | None = None) -> Frame:
    """Profile the pipeline at several growth factors and re-rank.

    Runs the backend on scaled copies of the pipeline (sample counts
    multiplied), so cache-fit flips show up in the measured throughputs
    rather than being inferred.
    """
    config = config or RunConfig(epochs=2, cache_mode="system")
    records = []
    for factor in growth_factors:
        if factor <= 0:
            raise ProfilingError("growth factors must be positive")
        scaled = pipeline.with_sample_count(
            max(1, round(pipeline.sample_count * factor)))
        best_strategy, best_sps = None, -1.0
        for plan in scaled.split_points():
            result = backend.run(plan, config)
            cached_sps = result.epochs[-1].throughput
            records.append({
                "growth": factor,
                "strategy": plan.strategy_name,
                "storage_gb": round(result.storage_bytes / GB, 1),
                "cold_sps": round(result.throughput, 1),
                "cached_sps": round(cached_sps, 1),
            })
            if cached_sps > best_sps:
                best_strategy, best_sps = plan.strategy_name, cached_sps
        for record in records:
            if record["growth"] == factor:
                record["winner"] = best_strategy
    return Frame.from_records(records)


def recommendation_flips(report: Frame) -> list[tuple[float, str]]:
    """(growth factor, winner) whenever the winning strategy changes."""
    flips: list[tuple[float, str]] = []
    last_winner = None
    for row in report.rows():
        winner = row["winner"]
        factor = row["growth"]
        if winner != last_winner and (not flips
                                      or flips[-1][0] != factor):
            flips.append((factor, winner))
            last_winner = winner
    return flips
