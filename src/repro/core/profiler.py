"""The strategy profiler: PRESTO's ``profile_strategy()``.

Runs strategies on a backend, repeats runs (``runs_total``), optionally
profiles only a subset of the dataset (``sample_count``) and aggregates
the paper's three key metrics -- preprocessing time, storage consumption
and throughput -- into result records / a :class:`~repro.core.frame.Frame`.

Execution is delegated to the :class:`~repro.exec.engine.SweepEngine`, so
profiling can fan out over worker pools (``jobs``) and memoize results in
a content-addressed :class:`~repro.exec.cache.ProfileCache` (``cache``)
without any caller changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, pstdev
from typing import Optional, Sequence

from repro.backends.base import Backend, RunConfig, StrategyRunResult
from repro.core.frame import Frame
from repro.core.strategy import Strategy, enumerate_strategies
from repro.errors import ProfilingError
from repro.pipelines.base import PipelineSpec, SplitPlan
from repro.units import GB, MB


@dataclass
class StrategyProfile:
    """Aggregated metrics of one strategy over ``runs_total`` repetitions."""

    strategy: Strategy
    runs: list[StrategyRunResult] = field(default_factory=list)

    @property
    def result(self) -> StrategyRunResult:
        """The representative (first) run."""
        return self.runs[0]

    # -- the paper's three key metrics -------------------------------------

    @property
    def throughput(self) -> float:
        """Mean first-epoch throughput in samples/second (T4)."""
        return mean(run.throughput for run in self.runs)

    @property
    def throughput_stdev(self) -> float:
        return pstdev([run.throughput for run in self.runs])

    @property
    def preprocessing_seconds(self) -> float:
        return mean(run.preprocessing_seconds for run in self.runs)

    @property
    def storage_bytes(self) -> float:
        return self.result.storage_bytes

    @property
    def cached_throughput(self) -> float:
        """Mean last-epoch throughput (caching experiments)."""
        return mean(run.cached_throughput for run in self.runs)

    @property
    def trace(self):
        """The first-epoch resource trace, or None when not measured."""
        run = self.result
        return run.epochs[0].trace if run.epochs else None

    def to_record(self) -> dict:
        """Flatten into a result-frame row.

        When the backend measured a resource trace, the row grows the
        diagnosis columns: the four attribution fractions plus the
        binding resource (``bound``).
        """
        run = self.result
        record = {
            "pipeline": run.pipeline,
            "strategy": run.strategy,
            "uid": self.strategy.uid,
            "threads": run.config.threads,
            "compression": run.config.compression or "none",
            "cache_mode": run.config.cache_mode,
            "throughput_sps": self.throughput,
            "throughput_stdev": self.throughput_stdev,
            "cached_throughput_sps": self.cached_throughput,
            "preprocessing_s": self.preprocessing_seconds,
            "storage_gb": self.storage_bytes / GB,
            "avg_read_mb_s": run.epochs[0].avg_read_bw / MB,
            "cache_hit_rate": run.epochs[-1].cache_hit_rate,
            "app_cache_failed": run.app_cache_failed,
        }
        trace = self.trace
        if trace is not None:
            shares = trace.fractions()
            record.update({
                "cpu_frac": round(shares["cpu"], 4),
                "storage_frac": round(shares["storage"], 4),
                "decode_frac": round(shares["decode"], 4),
                "stall_frac": round(shares["stall"], 4),
                "bound": trace.dominant(),
            })
        return record


class StrategyProfiler:
    """Profiles strategies on a backend and collects result frames.

    ``jobs`` fans profiling out over a worker pool (``None``/1 keeps the
    serial reference behaviour), ``cache`` memoizes results across calls;
    both are forwarded to the underlying sweep engine.  An explicit
    ``engine`` overrides both.
    """

    def __init__(self, backend: Backend, runs_total: int = 1,
                 jobs: Optional[int] = None, cache=None, engine=None):
        if runs_total < 1:
            raise ProfilingError("runs_total must be >= 1")
        self.backend = backend
        self.runs_total = runs_total
        if engine is None:
            from repro.exec.engine import SweepEngine
            engine = SweepEngine(backend, executor=jobs, cache=cache,
                                 runs_total=runs_total)
        self.engine = engine

    def profile_strategy(self, strategy: Strategy,
                         sample_count: Optional[int] = None,
                         ) -> StrategyProfile:
        """Run one strategy ``runs_total`` times.

        ``sample_count`` profiles a dataset subset, the paper's knob for
        cheap first looks (it recommends full-dataset profiling because
        some bottlenecks only appear once caches fill -- Sec. 3.1).
        """
        return self.engine.profile([strategy],
                                   sample_count=sample_count)[0]

    def profile_pipeline(self, pipeline: PipelineSpec,
                         config: Optional[RunConfig] = None,
                         sample_count: Optional[int] = None,
                         ) -> list[StrategyProfile]:
        """Profile every legal split of ``pipeline`` under one config."""
        return self.engine.profile_pipeline(pipeline, config=config,
                                            sample_count=sample_count)

    def profile_grid(self, strategies: Sequence[Strategy],
                     sample_count: Optional[int] = None,
                     ) -> list[StrategyProfile]:
        """Profile an explicit strategy grid (see
        :func:`repro.core.strategy.enumerate_strategies`)."""
        return self.engine.profile(strategies, sample_count=sample_count)

    @staticmethod
    def to_frame(profiles: Sequence[StrategyProfile]) -> Frame:
        """Collect profiles into a result frame (the pandas substitute)."""
        return Frame.from_records(
            [profile.to_record() for profile in profiles])
