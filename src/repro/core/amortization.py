"""Offline-time amortisation (paper Sec. 2: "Long preprocessing times
can be prohibitive if not amortized by faster training").

Materialising a representation pays a one-time offline cost to buy a
faster per-epoch rate.  Whether that pays off depends on how many epochs
the training runs:

    total_time(strategy, epochs) = offline + epochs * samples / T4

:func:`break_even_epochs` computes when a candidate strategy's total
time drops below a baseline's; :func:`best_strategy_for_epochs` picks
the overall winner for a given training length; and
:func:`time_to_first_batch` captures the interactive-use concern (the
unprocessed strategy starts training instantly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.frame import Frame
from repro.core.profiler import StrategyProfile
from repro.errors import ProfilingError


@dataclass(frozen=True)
class AmortizationPoint:
    """One strategy's total time at a given epoch horizon."""

    strategy: str
    epochs: int
    offline_seconds: float
    per_epoch_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.offline_seconds + self.epochs * self.per_epoch_seconds


def _per_epoch_seconds(profile: StrategyProfile) -> float:
    run = profile.result
    samples = run.epochs[0].samples
    if profile.throughput <= 0:
        raise ProfilingError(
            f"strategy {profile.strategy.split_name!r} has zero throughput")
    return samples / profile.throughput


def total_time(profile: StrategyProfile, epochs: int) -> float:
    """End-to-end seconds: offline preprocessing plus ``epochs`` passes."""
    if epochs < 0:
        raise ProfilingError("epochs must be non-negative")
    return (profile.preprocessing_seconds
            + epochs * _per_epoch_seconds(profile))


def time_to_first_batch(profile: StrategyProfile) -> float:
    """Seconds before training can consume its first sample."""
    return profile.preprocessing_seconds


def break_even_epochs(baseline: StrategyProfile,
                      candidate: StrategyProfile) -> Optional[int]:
    """Epochs after which ``candidate`` beats ``baseline`` end-to-end.

    Returns None when the candidate never catches up (its per-epoch rate
    is not better), 0 when it wins immediately.
    """
    base_epoch = _per_epoch_seconds(baseline)
    cand_epoch = _per_epoch_seconds(candidate)
    offline_gap = (candidate.preprocessing_seconds
                   - baseline.preprocessing_seconds)
    if offline_gap <= 0:
        return 0 if cand_epoch <= base_epoch else None
    saving_per_epoch = base_epoch - cand_epoch
    if saving_per_epoch <= 0:
        return None
    return math.ceil(offline_gap / saving_per_epoch)


def best_strategy_for_epochs(profiles: Sequence[StrategyProfile],
                             epochs: int) -> StrategyProfile:
    """The strategy minimising end-to-end time at this epoch horizon."""
    if not profiles:
        raise ProfilingError("no profiles")
    return min(profiles, key=lambda profile: total_time(profile, epochs))


def amortization_frame(profiles: Sequence[StrategyProfile],
                       horizons: Sequence[int] = (1, 5, 20, 100)) -> Frame:
    """Total hours per strategy across epoch horizons, plus the winner."""
    records = []
    for epochs in horizons:
        winner = best_strategy_for_epochs(profiles, epochs)
        for profile in profiles:
            records.append({
                "epochs": epochs,
                "strategy": profile.strategy.split_name,
                "total_hours": round(total_time(profile, epochs) / 3600, 2),
                "winner": winner.strategy.split_name,
            })
    return Frame.from_records(records)
