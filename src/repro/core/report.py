"""Rendering helpers for profiling results.

Turns profile collections into the paper's presentation formats: the
Fig. 6-style storage-vs-throughput listing, Table 1-style trade-off rows
and compact bottleneck summaries.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.backends.analytic import AnalyticModel
from repro.backends.base import RunConfig
from repro.core.frame import Frame
from repro.core.profiler import StrategyProfile
from repro.pipelines.base import PipelineSpec
from repro.units import fmt_bytes, fmt_duration, fmt_sps


def storage_vs_throughput(profiles: Sequence[StrategyProfile]) -> Frame:
    """Fig. 6 data: one row per strategy, storage and T4 throughput."""
    return Frame.from_records([
        {
            "strategy": profile.strategy.split_name,
            "storage": fmt_bytes(profile.storage_bytes),
            "storage_gb": profile.storage_bytes / 1e9,
            "throughput_sps": profile.throughput,
        }
        for profile in profiles
    ])


def tradeoff_table(profiles: Sequence[StrategyProfile]) -> Frame:
    """Table 1 layout: strategy, throughput, storage consumption."""
    return Frame.from_records([
        {
            "Preprocessing strategy": profile.strategy.split_name,
            "Throughput in samples/s": round(profile.throughput),
            "Storage Consumption in GB": round(
                profile.storage_bytes / 1e9, 1),
        }
        for profile in profiles
    ])


def bottleneck_report(pipeline: PipelineSpec,
                      config: Optional[RunConfig] = None,
                      model: Optional[AnalyticModel] = None) -> str:
    """"Where is my bottleneck?" -- per-strategy binding resources.

    Uses the analytic model's per-resource bounds to answer the paper's
    title question for every split point.
    """
    model = model or AnalyticModel()
    config = config or RunConfig()
    lines = [f"Bottleneck report for pipeline {pipeline.name!r} "
             f"({config.threads} threads):"]
    for plan in pipeline.split_points():
        if plan.is_unprocessed and config.compression:
            continue
        estimate = model.estimate(plan, config)
        lines.append(
            f"  {plan.strategy_name:>20s}: ~{fmt_sps(estimate.throughput)}"
            f", bound by {estimate.bottleneck}"
            f" (storage {fmt_bytes(estimate.storage_bytes)})")
    return "\n".join(lines)


def attribution_table(profiles: Sequence[StrategyProfile]) -> Frame:
    """Diagnosis columns: attribution fractions per strategy.

    Rows come straight from :meth:`StrategyProfile.to_record`, which
    carries ``cpu_frac``/``storage_frac``/``decode_frac``/``stall_frac``
    and ``bound`` whenever the backend measured a resource trace.
    """
    defaults = {"cpu_frac": None, "storage_frac": None, "decode_frac": None,
                "stall_frac": None, "bound": None}
    return Frame.from_records([
        {**defaults, **profile.to_record()} for profile in profiles
    ]).select(["strategy", "throughput_sps", "cpu_frac", "storage_frac",
               "decode_frac", "stall_frac", "bound"])


def tenant_table(report) -> Frame:
    """Per-tenant service metrics, one row per tenant job.

    ``report`` is a :class:`repro.serve.service.ServiceReport` (taken
    duck-typed so this layer does not import the serving layer above
    it): p50/p99 epoch time, delivered throughput, stall fraction,
    cache hit ratio and SLO violations per tenant.
    """
    return Frame.from_records(
        [job.to_record() for job in report.tenants])


def service_summary(report) -> str:
    """One-line operator summary of a service run."""
    dedup = (f" (+{report.offline_deduped} deduped)"
             if report.offline_deduped else "")
    return (f"service [{report.policy}]: {len(report.tenants)} tenant(s) "
            f"on {report.slots} slot(s), makespan "
            f"{fmt_duration(report.makespan)}, aggregate "
            f"{fmt_sps(report.aggregate_sps)}, cache hit "
            f"{report.cache_hit_ratio:.0%}, offline {report.offline_runs} "
            f"run(s){dedup}, SLO violations "
            f"{report.total_slo_violations}")


def stream_table(report) -> Frame:
    """Per-tenant streaming metrics, one row per request stream.

    ``report`` is a :class:`repro.stream.report.StreamReport` (taken
    duck-typed so this layer does not import the streaming layer above
    it): p50/p99 request latency, deadline-miss fraction, sheds,
    out-of-order completions, peak queue depth and delivered
    requests/second per tenant.
    """
    return Frame.from_records(
        [tenant.to_record() for tenant in report.tenants])


def stream_summary(report) -> str:
    """One-line operator summary of a streaming run."""
    shed = f", shed {report.total_shed}" if report.total_shed else ""
    slo_shed = (f", slo-shed {report.total_slo_shed}"
                if getattr(report, "total_slo_shed", 0) else "")
    faults = (f", {len(report.fault_events)} fault window(s)"
              if getattr(report, "fault_events", None) else "")
    return (f"stream: {len(report.tenants)} tenant stream(s), "
            f"{report.total_requests} request(s), makespan "
            f"{fmt_duration(report.makespan)}, p99 latency "
            f"{fmt_duration(report.p99_latency)}, deadline misses "
            f"{report.miss_fraction:.0%}{shed}{slo_shed}, cache hit "
            f"{report.cache_hit_ratio:.0%}{faults}")


def profile_summary(profile: StrategyProfile) -> str:
    """One-paragraph human summary of a single strategy profile."""
    run = profile.result
    pieces = [
        f"strategy {profile.strategy.name} on pipeline {run.pipeline}:",
        f"throughput {fmt_sps(profile.throughput)}",
        f"storage {fmt_bytes(profile.storage_bytes)}",
    ]
    if run.offline is not None:
        pieces.append(
            f"offline preprocessing {fmt_duration(run.offline.duration)}")
    if len(run.epochs) > 1:
        pieces.append(
            f"cached epochs reach {fmt_sps(profile.cached_throughput)}")
    if run.app_cache_failed:
        pieces.append("application cache FAILED (dataset exceeds RAM)")
    return " ".join(pieces)
