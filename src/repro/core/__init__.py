"""PRESTO core: strategies, profiling, analysis and tuning.

This package is the paper's primary contribution -- the Preprocessing
Strategy Optimizer.  The central objects are:

* :class:`repro.core.strategy.Strategy` -- a concrete offline/online split
  of a pipeline plus execution knobs (threads, caching, compression,
  sharding).
* :class:`repro.core.profiler.StrategyProfiler` -- runs strategies on a
  backend and collects the three key metrics (preprocessing time, storage
  consumption, throughput) plus dstat counters.  Execution is delegated
  to the parallel, memoizing :class:`repro.exec.engine.SweepEngine`.
* :class:`repro.core.analysis.StrategyAnalysis` -- normalizes the metrics
  and ranks strategies with the user-weighted objective function of
  paper Sec. 3.1.
"""

from repro.core.frame import Frame
from repro.core.strategy import Strategy, enumerate_strategies
from repro.core.profiler import StrategyProfiler, StrategyProfile
from repro.core.analysis import ObjectiveWeights, StrategyAnalysis

#: Extension modules (paper Sec. 3.1 / Sec. 7 discussion items):
#: repro.core.economics     - cloud-cost objective
#: repro.core.growth        - dataset-growth extrapolation
#: repro.core.amortization  - offline-time break-even analysis
#: repro.core.distributed   - multi-worker offline + trainer fan-out
#: repro.core.shuffling     - Sec. 4.5 shuffle placement
#: repro.core.training      - Fig. 3 stall model

__all__ = [
    "Frame",
    "Strategy",
    "enumerate_strategies",
    "StrategyProfiler",
    "StrategyProfile",
    "ObjectiveWeights",
    "StrategyAnalysis",
]
