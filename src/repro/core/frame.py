"""A small column-oriented data frame.

The original PRESTO returns profiling results as pandas DataFrames; pandas
is not available in this environment, so :class:`Frame` provides the slice
of functionality the profiler and the benchmark harness need: column
storage, row append, filtering, sorting, group-by aggregation, column
arithmetic and pretty markdown/CSV rendering.

A Frame is intentionally simple -- columns are Python lists, rows are
dicts -- because profiling result sets are tiny (tens to hundreds of
rows).  Clarity beats vectorisation here.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import FrameError


class Frame:
    """Column-oriented table with a pandas-like flavour."""

    def __init__(self, columns: Optional[Sequence[str]] = None):
        self._columns: dict[str, list[Any]] = {
            name: [] for name in (columns or [])
        }

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Frame":
        """Build a frame from an iterable of row dicts.

        The union of keys defines the columns; missing values become None.
        """
        rows = list(records)
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        frame = cls(columns)
        for row in rows:
            frame.append(row)
        return frame

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence[Any]]) -> "Frame":
        """Build a frame from name -> values mappings of equal length."""
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise FrameError(f"ragged columns: lengths {sorted(lengths)}")
        frame = cls(list(columns))
        for name, values in columns.items():
            frame._columns[name] = list(values)
        return frame

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one row; unknown keys become new columns padded with None."""
        for key in row:
            if key not in self._columns:
                self._columns[key] = [None] * len(self)
        for name, values in self._columns.items():
            values.append(row.get(name))

    # -- shape and access ------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __getitem__(self, name: str) -> list[Any]:
        try:
            return list(self._columns[name])
        except KeyError:
            raise FrameError(
                f"no column {name!r}; have {self.columns}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dict."""
        if not -len(self) <= index < len(self):
            raise FrameError(f"row {index} out of range for {len(self)} rows")
        return {name: values[index] for name, values in self._columns.items()}

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate rows as dicts."""
        for index in range(len(self)):
            yield self.row(index)

    # -- transformation ---------------------------------------------------------

    def with_column(self, name: str,
                    fn: Callable[[dict[str, Any]], Any]) -> "Frame":
        """Return a copy with an extra column computed per row."""
        result = Frame.from_records(list(self.rows()))
        values = [fn(row) for row in self.rows()]
        result._columns[name] = values
        return result

    def select(self, names: Sequence[str]) -> "Frame":
        """Return a copy containing only ``names``, in that order."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise FrameError(f"no such columns: {missing}")
        return Frame.from_columns({name: self._columns[name]
                                   for name in names})

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Frame":
        """Return a copy with only rows matching ``predicate``."""
        return Frame.from_records(
            [row for row in self.rows() if predicate(row)])

    def sort_by(self, name: str, descending: bool = False) -> "Frame":
        """Return a copy sorted by one column (None sorts last)."""
        if name not in self._columns and len(self):
            raise FrameError(f"no column {name!r}")

        def key(row: dict[str, Any]):
            value = row.get(name)
            return (value is None, value)

        ordered = sorted(self.rows(), key=key, reverse=descending)
        return Frame.from_records(ordered)

    def group_by(self, name: str,
                 aggregations: Mapping[str, Callable[[list[Any]], Any]],
                 ) -> "Frame":
        """Group rows by ``name`` and aggregate other columns.

        ``aggregations`` maps column -> reducer over the grouped values.
        Groups appear in first-seen order.
        """
        groups: dict[Any, list[dict[str, Any]]] = {}
        for row in self.rows():
            groups.setdefault(row.get(name), []).append(row)
        records = []
        for key_value, members in groups.items():
            record: dict[str, Any] = {name: key_value}
            for column, reducer in aggregations.items():
                record[column] = reducer([m.get(column) for m in members])
            records.append(record)
        return Frame.from_records(records)

    # -- numeric helpers ----------------------------------------------------------

    def column_min(self, name: str) -> float:
        values = [v for v in self[name] if v is not None]
        if not values:
            raise FrameError(f"column {name!r} has no values")
        return min(values)

    def column_max(self, name: str) -> float:
        values = [v for v in self[name] if v is not None]
        if not values:
            raise FrameError(f"column {name!r} has no values")
        return max(values)

    def normalized(self, name: str) -> list[float]:
        """Min-max normalise a numeric column into [0, 1].

        A constant column normalises to all zeros (the paper's objective
        then ignores it, since every strategy is equal on that metric).
        """
        values = self[name]
        low, high = self.column_min(name), self.column_max(name)
        span = high - low
        if span == 0:
            return [0.0 for _ in values]
        return [(value - low) / span if value is not None else 0.0
                for value in values]

    # -- rendering -----------------------------------------------------------------

    def to_markdown(self, float_format: str = "{:.3f}") -> str:
        """Render as a GitHub-style markdown table."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return "" if value is None else str(value)

        names = self.columns
        rows = [[fmt(row[name]) for name in names] for row in self.rows()]
        widths = [max(len(name), *(len(r[i]) for r in rows), 3) if rows
                  else max(len(name), 3)
                  for i, name in enumerate(names)]
        header = "| " + " | ".join(
            name.ljust(width) for name, width in zip(names, widths)) + " |"
        rule = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
        body = [
            "| " + " | ".join(cell.ljust(width)
                              for cell, width in zip(row, widths)) + " |"
            for row in rows
        ]
        return "\n".join([header, rule, *body])

    def to_csv(self) -> str:
        """Render as CSV text (header + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows():
            writer.writerow([row[name] for name in self.columns])
        return buffer.getvalue()

    def __repr__(self) -> str:
        return f"Frame({len(self)} rows x {len(self.columns)} columns)"
