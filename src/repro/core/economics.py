"""Cloud-cost objective functions (paper Sec. 3.1 extension).

The paper notes that "more complex objective functions can feature cloud
providers' processing and storage prices".  This module prices a
profiled strategy end-to-end:

* **offline compute** -- the preprocessing VM, billed per hour;
* **storage** -- the materialised representation, billed per GB-month
  for the lifetime of the training project;
* **read egress** -- bytes moved from storage to the trainers per epoch
  (relevant when storage and compute live in different zones);
* **training compute** -- the accelerator, billed per hour, for
  ``epochs * samples / effective_throughput`` where the effective rate
  is capped by the preprocessing throughput (stalls burn GPU dollars --
  the economic reading of the paper's Fig. 3).

:func:`cheapest_strategy` then ranks profiles by total cost, giving a
monetary counterpart to :class:`~repro.core.analysis.StrategyAnalysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.frame import Frame
from repro.core.profiler import StrategyProfile
from repro.errors import ProfilingError
from repro.units import GB, HOUR

#: Seconds per billing month (30 days).
MONTH = 30 * 24 * HOUR


@dataclass(frozen=True)
class PriceSheet:
    """Cloud prices; defaults approximate a 2021 public-cloud price list."""

    preprocessing_vm_per_hour: float = 0.38   # 8-vCPU VM
    trainer_per_hour: float = 3.06            # single-V100 instance
    storage_per_gb_month: float = 0.023       # object storage
    egress_per_gb: float = 0.0                # same-zone by default
    trainer_ingest_sps: float = 1457.0        # V100 ResNet-50 rate

    def __post_init__(self):
        if min(self.preprocessing_vm_per_hour, self.trainer_per_hour,
               self.storage_per_gb_month, self.egress_per_gb) < 0:
            raise ProfilingError("prices must be non-negative")
        if self.trainer_ingest_sps <= 0:
            raise ProfilingError("trainer ingest rate must be positive")


@dataclass(frozen=True)
class StrategyCost:
    """Dollar breakdown of one strategy for a training project."""

    strategy: str
    offline_usd: float
    storage_usd: float
    egress_usd: float
    training_usd: float
    training_hours: float
    stall_fraction: float

    @property
    def total_usd(self) -> float:
        return (self.offline_usd + self.storage_usd + self.egress_usd
                + self.training_usd)

    def to_record(self) -> dict:
        return {
            "strategy": self.strategy,
            "offline_usd": round(self.offline_usd, 2),
            "storage_usd": round(self.storage_usd, 2),
            "egress_usd": round(self.egress_usd, 2),
            "training_usd": round(self.training_usd, 2),
            "total_usd": round(self.total_usd, 2),
            "training_hours": round(self.training_hours, 1),
            "stall_pct": round(100 * self.stall_fraction, 1),
        }


def price_strategy(profile: StrategyProfile, prices: PriceSheet,
                   epochs: int, project_months: float = 1.0) -> StrategyCost:
    """Price one profiled strategy over a training project.

    ``epochs`` is how many passes the training makes over the dataset;
    ``project_months`` is how long the materialised representation must
    stay on storage.
    """
    if epochs < 1:
        raise ProfilingError("need at least one training epoch")
    if project_months < 0:
        raise ProfilingError("project duration must be non-negative")
    run = profile.result
    samples = run.epochs[0].samples

    offline_usd = (profile.preprocessing_seconds / HOUR
                   * prices.preprocessing_vm_per_hour)
    storage_usd = (profile.storage_bytes / GB * project_months
                   * prices.storage_per_gb_month)
    egress_usd = (profile.storage_bytes / GB * epochs
                  * prices.egress_per_gb)
    # The trainer runs at min(T4, ingest): stalls stretch wall-clock.
    effective_sps = min(profile.throughput, prices.trainer_ingest_sps)
    training_seconds = epochs * samples / effective_sps
    training_usd = training_seconds / HOUR * prices.trainer_per_hour
    stall = 1.0 - effective_sps / prices.trainer_ingest_sps
    return StrategyCost(
        strategy=profile.strategy.split_name,
        offline_usd=offline_usd,
        storage_usd=storage_usd,
        egress_usd=egress_usd,
        training_usd=training_usd,
        training_hours=training_seconds / HOUR,
        stall_fraction=stall,
    )


def cost_frame(profiles: Sequence[StrategyProfile], prices: PriceSheet,
               epochs: int, project_months: float = 1.0) -> Frame:
    """Dollar comparison of strategies, cheapest first."""
    costs = [price_strategy(profile, prices, epochs, project_months)
             for profile in profiles]
    return Frame.from_records(
        [cost.to_record() for cost in costs]).sort_by("total_usd")


def cheapest_strategy(profiles: Sequence[StrategyProfile],
                      prices: Optional[PriceSheet] = None, epochs: int = 10,
                      project_months: float = 1.0) -> StrategyCost:
    """The monetary winner for a given project shape."""
    if not profiles:
        raise ProfilingError("no profiles to price")
    prices = prices or PriceSheet()
    costs = [price_strategy(profile, prices, epochs, project_months)
             for profile in profiles]
    return min(costs, key=lambda cost: cost.total_usd)
