"""Strategies: a pipeline split plus execution knobs.

PRESTO's ``Strategy`` wrapper (paper Sec. 3.1) splits a pipeline at a
given step into offline and online parts and carries the additional
parameters: parallelism, sharding, caching behaviour and compression
format.  :func:`enumerate_strategies` generates the grid the profiler and
auto-tuner walk.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.backends.base import CACHE_NONE, RunConfig
from repro.pipelines.base import PipelineSpec, SplitPlan


@dataclass(frozen=True)
class Strategy:
    """One fully-specified way to execute a preprocessing pipeline."""

    plan: SplitPlan
    config: RunConfig

    @property
    def pipeline_name(self) -> str:
        return self.plan.pipeline.name

    @property
    def split_name(self) -> str:
        """The materialised representation, e.g. ``resized``."""
        return self.plan.strategy_name

    @property
    def name(self) -> str:
        """Human-readable identity used in result frames."""
        parts = [self.split_name, f"threads={self.config.threads}"]
        if self.config.compression:
            parts.append(f"comp={self.config.compression}")
        if self.config.cache_mode != CACHE_NONE:
            parts.append(f"cache={self.config.cache_mode}")
        if self.config.shuffle_buffer:
            parts.append(f"shuffle={self.config.shuffle_buffer}")
        return "[" + ", ".join(parts) + "]"

    @property
    def uid(self) -> str:
        """Stable short hash identifying this strategy (the paper logs a
        unique hash per profiled strategy)."""
        payload = "|".join([
            self.pipeline_name, self.split_name,
            str(self.config.threads), str(self.config.compression),
            self.config.cache_mode, str(self.config.effective_shards),
            str(self.config.epochs), str(self.config.shuffle_buffer),
        ])
        return hashlib.sha1(payload.encode()).hexdigest()[:10]


def enumerate_strategies(
        pipeline: PipelineSpec,
        threads: Sequence[int] = (8,),
        compressions: Sequence[Optional[str]] = (None,),
        cache_modes: Sequence[str] = (CACHE_NONE,),
        epochs: int = 1,
        splits: Optional[Iterable[int | str]] = None) -> list[Strategy]:
    """Build the strategy grid for a pipeline.

    ``splits`` restricts the split points (defaults to all legal ones).
    Unprocessed+compression combinations are skipped, as in the paper
    (Sec. 4.3: compression cannot fix random-access-bound strategies).
    """
    if splits is None:
        plans = pipeline.split_points()
    else:
        plans = [pipeline.split_at(split) for split in splits]
    strategies = []
    for plan in plans:
        for n_threads in threads:
            for compression in compressions:
                if plan.is_unprocessed and compression is not None:
                    continue
                for cache_mode in cache_modes:
                    strategies.append(Strategy(plan, RunConfig(
                        threads=n_threads,
                        epochs=epochs,
                        compression=compression,
                        cache_mode=cache_mode)))
    return strategies
