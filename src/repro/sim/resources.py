"""Capacity-limited resources for the simulation kernel.

Two primitives cover every contention point in the storage/CPU model:

* :class:`Resource` -- a counting semaphore with a FIFO wait queue (CPU
  cores, metadata-server slots, concurrent-seek slots).
* :class:`Lock` -- a single-slot resource with an optional *convoy
  overhead*: each acquisition costs extra time proportional to the number
  of waiters.  This models the context-switch convoy the paper observed for
  tiny samples (Sec. 4.4 observation 1: 100,000 context switches/s at
  0.01 MB samples erase the benefit of multi-threading).
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.errors import ResourceError
from repro.sim.events import Event, Simulation, Timeout


class Resource:
    """A counting semaphore with FIFO granting.

    Usage inside a process::

        yield resource.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulation, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Counters for dstat-style introspection.
        self.total_acquisitions = 0
        self.peak_in_use = 0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when a slot is granted."""
        grant = Event(self.sim)
        if self._in_use < self.capacity:
            # Uncontended acquisition: grant the slot immediately.
            in_use = self._in_use + 1
            self._in_use = in_use
            self.total_acquisitions += 1
            if in_use > self.peak_in_use:
                self.peak_in_use = in_use
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release a previously-acquired slot."""
        in_use = self._in_use
        if in_use <= 0:
            raise ResourceError(f"release of idle resource {self.name!r}")
        waiters = self._waiters
        if waiters:
            # Hand the slot straight to the next waiter.
            self.total_acquisitions += 1
            waiters.popleft().succeed(self)
        else:
            self._in_use = in_use - 1

    def use(self, service_time: float) -> Generator[Event, None, None]:
        """Process helper: acquire, hold for ``service_time``, release."""
        yield self.acquire()
        try:
            yield Timeout(self.sim, service_time)
        finally:
            self.release()


class Lock(Resource):
    """A mutex with an optional per-waiter convoy overhead.

    ``convoy_overhead`` adds that many seconds to every *hold* for each
    process queued behind the lock at grant time, capped by
    ``max_convoy_waiters``.  With 8 threads hammering a 110 us dispatch
    lock this reproduces the near-1x speedup the paper measured for
    0.01 MB samples (Fig. 11) without special-casing sample sizes.
    """

    def __init__(self, sim: Simulation, name: str = "lock",
                 convoy_overhead: float = 0.0, max_convoy_waiters: int = 8):
        super().__init__(sim, capacity=1, name=name)
        self.convoy_overhead = convoy_overhead
        self.max_convoy_waiters = max_convoy_waiters

    def contention_penalty(self) -> float:
        """Extra hold time induced by the current queue length."""
        waiters = min(self.queued, self.max_convoy_waiters)
        return waiters * self.convoy_overhead

    def hold(self, base_time: float) -> Generator[Event, None, None]:
        """Acquire, hold for ``base_time`` plus convoy penalty, release."""
        yield self.acquire()
        try:
            waiters = len(self._waiters)
            if waiters > self.max_convoy_waiters:
                waiters = self.max_convoy_waiters
            yield Timeout(self.sim,
                          base_time + waiters * self.convoy_overhead)
        finally:
            self.release()

    def hold_scaled(self, per_unit_time: float,
                    units: float) -> Generator[Event, None, None]:
        """Hold for ``units`` work items, paying convoy overhead *per unit*.

        Used when samples are batched into jobs: a job of k samples holds
        the lock once but still pays k context-switch penalties, so the
        batching optimisation of the simulator does not dilute contention.
        """
        yield self.acquire()
        try:
            waiters = len(self._waiters)
            if waiters > self.max_convoy_waiters:
                waiters = self.max_convoy_waiters
            per_unit = per_unit_time + waiters * self.convoy_overhead
            yield Timeout(self.sim, units * per_unit)
        finally:
            self.release()
