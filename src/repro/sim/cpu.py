"""The training VM: cores, memory, the GIL and the dispatch lock.

A :class:`Machine` bundles the client-side resources of the paper's
experimental VM (8 VCPUs, 80 GB RAM):

* ``cores`` -- a counting semaphore; *native* preprocessing steps occupy a
  core for their duration and therefore scale with threads.
* ``gil`` -- a lock held by *external* steps (NumPy / newspaper / h5py via
  ``tf.py_function`` in the paper).  External work serializes regardless of
  thread count and suffers convoy overhead, reproducing the < 1.0 speedups
  of Fig. 12/13.
* ``dispatch`` -- the serialized per-sample hand-off between the pipeline
  runtime and the consumer.  Its ~110 us hold dominates tiny samples
  (NILM aggregated plateaus near 9 k SPS however many threads run).
* ``memory_link`` -- bandwidth for page-cache hits and app-cache reads.
* ``page_cache`` -- the OS page cache (system-level caching).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.bandwidth import SharedBandwidth
from repro.sim.events import Event, Simulation, Timeout
from repro.sim.pagecache import PageCache
from repro.sim.resources import Lock, Resource
from repro.units import GB, US


class Machine:
    """Client VM resources shared by all reader threads of a run."""

    def __init__(self, sim: Simulation, cores: int = 8,
                 ram_bytes: float = 80 * GB,
                 page_cache_bytes: Optional[float] = None,
                 memory_bw: float = 150 * GB,
                 memory_stream_bw: float = 20 * GB,
                 dispatch_cost: float = 110 * US,
                 dispatch_convoy: float = 6 * US,
                 gil_convoy: float = 25 * US):
        self.sim = sim
        self.n_cores = cores
        self.ram_bytes = float(ram_bytes)
        self.cores = Resource(sim, cores, name="cores")
        self.gil = Lock(sim, name="gil", convoy_overhead=gil_convoy)
        self.dispatch = Lock(sim, name="dispatch",
                             convoy_overhead=dispatch_convoy)
        self.dispatch_cost = dispatch_cost
        self.memory_link = SharedBandwidth(sim, memory_bw, memory_stream_bw,
                                           name="memory")
        if page_cache_bytes is None:
            # The kernel cannot use all RAM for pages: the process image,
            # buffers and the framework claim a slice.  ~94% of 80 GB keeps
            # the paper's "fits under 80 GB" threshold intact.
            page_cache_bytes = 0.94 * ram_bytes
        self.page_cache = PageCache(page_cache_bytes)
        # Counters.
        self.cpu_busy_seconds = 0.0
        self.gil_busy_seconds = 0.0

    # -- execution helpers -----------------------------------------------------

    def compute_native(self, cpu_seconds: float
                       ) -> Generator[Event, None, None]:
        """Run framework-native work: occupies one core, scales with cores."""
        if cpu_seconds <= 0:
            return
        self.cpu_busy_seconds += cpu_seconds
        cores = self.cores
        yield cores.acquire()
        try:
            yield Timeout(self.sim, cpu_seconds)
        finally:
            cores.release()

    def compute_external(self, cpu_seconds: float
                         ) -> Generator[Event, None, None]:
        """Run external-library work: holds the GIL, serializing all threads.

        The convoy overhead grows with the number of blocked threads, so
        adding threads to GIL-bound work *slows it down* -- the paper's
        "inefficient preprocessing" observation (Sec. 4.4 obs. 2).
        """
        if cpu_seconds <= 0:
            return
        self.gil_busy_seconds += cpu_seconds
        gil = self.gil
        yield gil.acquire()
        try:
            yield Timeout(self.sim, cpu_seconds + gil.contention_penalty())
        finally:
            gil.release()

    def dispatch_samples(self, n_samples: float, per_sample_cost: Optional[
            float] = None) -> Generator[Event, None, None]:
        """Hand ``n_samples`` results across the serialized dispatch lock."""
        cost = self.dispatch_cost if per_sample_cost is None else per_sample_cost
        yield from self.dispatch.hold(n_samples * cost)

    def read_memory(self, nbytes: float) -> Generator[Event, None, None]:
        """Move bytes over the memory bus (app-cache and page-cache hits)."""
        yield self.memory_link.transfer(nbytes)

    def drop_page_cache(self) -> None:
        """The paper drops the page cache between repetitions."""
        self.page_cache.drop()
