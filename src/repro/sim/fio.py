"""An fio-style storage probe (paper Table 3).

The paper characterises its Ceph cluster with four fio workloads:
sequential (one 5 GB file per thread) and random (5000 files of 0.2 MB per
thread), each single- and multi-threaded.  :func:`run_fio` replays the same
workloads against a simulated :class:`~repro.sim.cluster.StorageCluster`
and reports bandwidth, IOPS and latency in the paper's format.

fio reads through the lean I/O path (no DL-framework overhead), so the
random workloads use ``DeviceProfile.open_latency`` rather than the
pipeline-path latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.cluster import StorageCluster
from repro.sim.events import Event, Simulation, all_of
from repro.sim.storage import DeviceProfile
from repro.units import GB, KIB, MB


@dataclass(frozen=True)
class FioWorkload:
    """One row of the fio profile."""

    threads: int
    files_per_thread: int
    file_bytes: float

    @property
    def is_sequential(self) -> bool:
        return self.files_per_thread == 1

    @property
    def total_bytes(self) -> float:
        return self.threads * self.files_per_thread * self.file_bytes

    def describe(self) -> str:
        kind = "sequential" if self.is_sequential else "random"
        return (f"{kind}: {self.threads} thread(s) x "
                f"{self.files_per_thread} file(s) x {self.file_bytes / MB:.1f} MB")


@dataclass
class FioResult:
    """Measured outcome of one workload."""

    workload: FioWorkload
    duration: float
    bandwidth: float
    iops: float
    latency_low: float
    latency_high: float

    @property
    def files_per_second(self) -> float:
        total_files = self.workload.threads * self.workload.files_per_thread
        return total_files / self.duration


#: The paper's Table 3 workloads: 5 GB sequential vs 5000 x 0.2 MB random.
TABLE3_WORKLOADS = (
    FioWorkload(threads=1, files_per_thread=1, file_bytes=5 * GB),
    FioWorkload(threads=8, files_per_thread=1, file_bytes=5 * GB),
    FioWorkload(threads=1, files_per_thread=5000, file_bytes=0.2 * MB),
    FioWorkload(threads=8, files_per_thread=5000, file_bytes=0.2 * MB),
)


def _reader(cluster: StorageCluster, thread_id: int, workload: FioWorkload
            ) -> Generator[Event, None, None]:
    for file_index in range(workload.files_per_thread):
        yield from cluster.read(
            key=("fio", thread_id, file_index),
            nbytes=workload.file_bytes,
            open_file=not workload.is_sequential,
            pipeline_path=False,
        )


def run_workload(profile: DeviceProfile, workload: FioWorkload) -> FioResult:
    """Run one fio workload on a fresh simulated cluster."""
    sim = Simulation()
    cluster = StorageCluster(sim, profile)
    threads = [
        sim.process(_reader(cluster, i, workload), name=f"fio-{i}")
        for i in range(workload.threads)
    ]

    def wait_all() -> Generator[Event, None, None]:
        yield all_of(sim, threads)

    sim.run_process(wait_all(), name="fio")
    duration = sim.now
    bandwidth = workload.total_bytes / duration
    # fio counts 4 KiB block operations, not file opens.
    iops = bandwidth / (4 * KIB)
    return FioResult(
        workload=workload,
        duration=duration,
        bandwidth=bandwidth,
        iops=iops,
        latency_low=4e-6,
        latency_high=profile.block_latency + 3e-6,
    )


def run_fio(profile: DeviceProfile,
            workloads: tuple[FioWorkload, ...] = TABLE3_WORKLOADS,
            ) -> list[FioResult]:
    """Replay the full Table 3 profile against ``profile``."""
    return [run_workload(profile, workload) for workload in workloads]
