"""A sysbench-style memory-bandwidth probe.

The paper validates its memory subsystem with sysbench (166 GB/s,
Sec. 4.2 obs. 3).  :func:`run_memory_probe` measures the simulated
machine's memory link the same way: ``threads`` workers each stream a
block of memory, and the aggregate bandwidth is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.cpu import Machine
from repro.sim.events import Event, Simulation, all_of
from repro.units import GB


@dataclass
class MemoryProbeResult:
    """Outcome of one memory-bandwidth measurement."""

    threads: int
    total_bytes: float
    duration: float

    @property
    def bandwidth(self) -> float:
        return self.total_bytes / self.duration


def run_memory_probe(machine_factory=None, threads: int = 8,
                     block_bytes: float = 16 * GB) -> MemoryProbeResult:
    """Stream ``block_bytes`` per thread over the memory link."""
    sim = Simulation()
    machine = machine_factory(sim) if machine_factory else Machine(sim)

    def worker() -> Generator[Event, None, None]:
        yield from machine.read_memory(block_bytes)

    workers = [sim.process(worker(), name=f"membench-{i}")
               for i in range(threads)]

    def wait_all() -> Generator[Event, None, None]:
        yield all_of(sim, workers)

    sim.run_process(wait_all(), name="sysbench")
    return MemoryProbeResult(
        threads=threads,
        total_bytes=threads * block_bytes,
        duration=sim.now,
    )
