"""Discrete-event hardware simulation substrate.

This subpackage replaces the paper's physical test bed (an 8-VCPU OpenStack
VM talking to an HDD/SSD-backed Ceph cluster over a 10 Gb/s link) with a
deterministic discrete-event simulation:

* :mod:`repro.sim.events` -- the event loop (a minimal, dependency-free
  simpy-like kernel: processes are generators that yield events).
* :mod:`repro.sim.resources` -- capacity-limited resources and locks.
* :mod:`repro.sim.bandwidth` -- max-min fair shared links.
* :mod:`repro.sim.storage` / :mod:`repro.sim.cluster` -- devices and the
  Ceph-like object store.
* :mod:`repro.sim.pagecache` -- the OS page cache (system-level caching).
* :mod:`repro.sim.cpu` -- cores, the GIL and the serialized dispatch lock.
* :mod:`repro.sim.fio` / :mod:`repro.sim.sysbench` -- probe tools mirroring
  the paper's Table 3 and memory-bandwidth measurements.
* :mod:`repro.sim.dstat` -- time-series counters captured during runs.
* :mod:`repro.sim.trace` -- unified per-epoch resource traces (elapsed
  thread-time attribution consumed by :mod:`repro.diagnosis`).
"""

from repro.sim.events import Event, Process, Simulation, Timeout
from repro.sim.resources import Lock, Resource
from repro.sim.bandwidth import SharedBandwidth
from repro.sim.trace import ResourceTrace

__all__ = [
    "Event",
    "Process",
    "Simulation",
    "Timeout",
    "Lock",
    "Resource",
    "ResourceTrace",
    "SharedBandwidth",
]
