"""Storage device profiles.

A :class:`DeviceProfile` captures everything the simulator needs to know
about a storage backend: how fast a single sequential stream goes, what the
whole cluster can sustain, and how expensive opening a file is.

Two open latencies are carried per device:

* ``open_latency`` -- the raw metadata/seek cost as seen by a lean probe
  such as fio (paper Table 3: 33 files/s for one thread on Ceph-HDD
  implies ~30 ms per 0.2 MB file).
* ``pipeline_open_latency`` -- the *effective* per-file cost seen by a DL
  data loader reading one sample per file.  The paper's CV pipeline reaches
  only 107 SPS on 8 threads (74.8 ms per sample, ~67 ms of which is not
  CPU), i.e. roughly twice the fio cost: the framework path adds VFS
  round-trips and cold metadata-server lookups across 1.3 M files.  We keep
  both constants explicit rather than hiding the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import GB, MB, MS, US


@dataclass(frozen=True)
class DeviceProfile:
    """Static performance characteristics of a storage backend."""

    name: str
    #: Max sequential bandwidth of a single stream, bytes/s.
    stream_bw: float
    #: Max aggregate read bandwidth across all streams, bytes/s.
    aggregate_bw: float
    #: Max aggregate write bandwidth, bytes/s.
    write_bw: float
    #: Per-file open/seek latency on the lean (fio) path, seconds.
    open_latency: float
    #: Per-file open latency on the DL-framework path, seconds.
    pipeline_open_latency: float
    #: Concurrent metadata operations the cluster can service.
    metadata_slots: int
    #: Reported block-level submission latency (Table 3 "Latency" column).
    block_latency: float = 7 * US

    def with_overrides(self, **kwargs) -> "DeviceProfile":
        """Return a copy with selected fields replaced (what-if studies)."""
        return replace(self, **kwargs)


#: The paper's HDD-backed Ceph cluster behind a 10 Gb/s link (Table 3:
#: 219 MB/s single stream, 910 MB/s with 8 threads, 33 files/s random).
#: Six metadata slots reproduce the sub-linear random-access scaling of
#: Table 3 (33 -> 202 files/s from 1 -> 8 threads); the 50 ms pipeline-path
#: open then lands CV ``unprocessed`` at the paper's 107 SPS.
HDD_CEPH = DeviceProfile(
    name="ceph-hdd",
    stream_bw=219 * MB,
    aggregate_bw=910 * MB,
    write_bw=910 * MB,
    open_latency=29.5 * MS,
    pipeline_open_latency=52 * MS,
    metadata_slots=6,
)

#: The paper's SSD-backed Ceph cluster (Sec. 4.1: CV unprocessed reaches
#: 588 SPS => ~6 ms effective per-file cost; sequential reads match HDD
#: because the 10 Gb/s link is the binding constraint).
SSD_CEPH = DeviceProfile(
    name="ceph-ssd",
    stream_bw=219 * MB,
    aggregate_bw=910 * MB,
    write_bw=910 * MB,
    open_latency=1.2 * MS,
    pipeline_open_latency=6.0 * MS,
    metadata_slots=64,
)

#: A local NVMe drive (not in the paper; used by the what-if example).
NVME_LOCAL = DeviceProfile(
    name="nvme-local",
    stream_bw=2_500 * MB,
    aggregate_bw=6_000 * MB,
    write_bw=3_000 * MB,
    open_latency=80 * US,
    pipeline_open_latency=250 * US,
    metadata_slots=256,
)

#: RAM disk: effectively free opens, memory-speed streams.
MEMORY_DISK = DeviceProfile(
    name="memory",
    stream_bw=20 * GB,
    aggregate_bw=150 * GB,
    write_bw=150 * GB,
    open_latency=2 * US,
    pipeline_open_latency=5 * US,
    metadata_slots=1024,
)

#: Registry for CLI/example lookup by name.
DEVICE_PROFILES: dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in (HDD_CEPH, SSD_CEPH, NVME_LOCAL, MEMORY_DISK)
}
