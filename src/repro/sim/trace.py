"""Unified resource traces: where did the epoch's thread-time go?

The paper's title question needs more than a throughput number -- it
needs *attribution*: how much of an epoch was spent computing, moving
bytes, decoding records, or simply stalled on serialized hand-offs and
load imbalance.  A :class:`ResourceTrace` aggregates exactly that for
one simulated epoch, measured in *elapsed thread-seconds* per category
(so contention and queueing are charged to the phase that waited, the
way ``perf``/``dstat`` wall-clock profiles would see it).

Categories:

* ``open_seconds``    -- metadata-server file opens (storage path)
* ``read_seconds``    -- network transfers from the object store
* ``memory_seconds``  -- page-cache / app-cache reads over the memory bus
* ``decode_seconds``  -- decompression + record deserialization
* ``cpu_seconds``     -- framework-native online step compute
* ``gil_seconds``     -- external (GIL-holding) online step compute
* ``dispatch_seconds``-- the serialized per-sample hand-off lock
* ``shuffle_seconds`` -- shuffle-buffer maintenance

Anything not bracketed (runtime overhead, buffer allocation, barrier
idle time when threads finish unevenly) lands in the derived *stall*
remainder, so the four attribution fractions returned by
:meth:`ResourceTrace.fractions` always sum to exactly 1.0.

The :func:`timed` / :func:`timed_wait` helpers bracket simulation
phases without perturbing event order -- they only read ``sim.now``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, Simulation

#: Trace categories that accumulate elapsed thread-seconds.
TRACE_CATEGORIES = ("open", "read", "memory", "decode", "cpu", "gil",
                    "dispatch", "shuffle")

#: Category -> attribute name, precomputed so the per-event accumulation
#: path does no string formatting.
_CATEGORY_FIELDS = {category: f"{category}_seconds"
                    for category in TRACE_CATEGORIES}


@dataclass
class ResourceTrace:
    """Per-epoch elapsed-time attribution plus byte counters."""

    duration: float = 0.0          # epoch wall-clock seconds
    threads: int = 1               # reader threads actually running
    open_seconds: float = 0.0
    read_seconds: float = 0.0
    memory_seconds: float = 0.0
    decode_seconds: float = 0.0
    cpu_seconds: float = 0.0
    gil_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    bytes_from_storage: float = 0.0
    bytes_from_cache: float = 0.0
    cache_hit_rate: float = 0.0

    # -- accumulation ------------------------------------------------------

    def add(self, category: str, seconds: float) -> None:
        """Charge ``seconds`` of elapsed thread-time to ``category``."""
        field = _CATEGORY_FIELDS.get(category)
        if field is None:
            raise SimulationError(f"unknown trace category {category!r}")
        setattr(self, field, getattr(self, field) + seconds)

    # -- derived time budgets ----------------------------------------------

    @property
    def total_thread_seconds(self) -> float:
        """The full time budget: wall duration across all reader threads."""
        return self.duration * self.threads

    @property
    def accounted_seconds(self) -> float:
        """Thread-seconds bracketed by an explicit category."""
        return sum(getattr(self, f"{category}_seconds")
                   for category in TRACE_CATEGORIES)

    @property
    def stall_seconds(self) -> float:
        """Unaccounted thread-seconds: hand-off waits outside brackets,
        runtime overhead, and end-of-epoch load imbalance."""
        return max(self.total_thread_seconds - self.accounted_seconds, 0.0)

    # -- attribution -------------------------------------------------------

    def fractions(self) -> dict[str, float]:
        """The four attribution fractions; non-negative, sum to 1.0.

        * ``cpu``     -- native + external (GIL) step compute
        * ``storage`` -- opens + network reads + cache-memory reads
        * ``decode``  -- decompression + deserialization
        * ``stall``   -- dispatch/shuffle serialization and idle remainder
        """
        total = self.total_thread_seconds
        if total <= 0:
            return {"cpu": 0.0, "storage": 0.0, "decode": 0.0, "stall": 1.0}
        cpu = (self.cpu_seconds + self.gil_seconds) / total
        storage = (self.open_seconds + self.read_seconds
                   + self.memory_seconds) / total
        decode = self.decode_seconds / total
        accounted = cpu + storage + decode
        if accounted > 1.0:
            # Float round-off can nudge the bracketed sum past the wall
            # budget; renormalize so the contract (sum == 1.0) holds.
            cpu, storage, decode = (value / accounted
                                    for value in (cpu, storage, decode))
            accounted = 1.0
        return {"cpu": cpu, "storage": storage, "decode": decode,
                "stall": 1.0 - accounted}

    def dominant(self) -> str:
        """The binding category (ties resolved in declaration order)."""
        shares = self.fractions()
        return max(shares, key=shares.get)

    # -- combination -------------------------------------------------------

    def merged(self, other: "ResourceTrace") -> "ResourceTrace":
        """Sum of two traces (e.g. across epochs); thread width must match."""
        if other.threads != self.threads:
            raise SimulationError(
                f"cannot merge traces with different thread counts "
                f"({self.threads} vs {other.threads})")
        merged = ResourceTrace(
            duration=self.duration + other.duration, threads=self.threads)
        for category in TRACE_CATEGORIES:
            field = f"{category}_seconds"
            setattr(merged, field,
                    getattr(self, field) + getattr(other, field))
        merged.bytes_from_storage = (self.bytes_from_storage
                                     + other.bytes_from_storage)
        merged.bytes_from_cache = (self.bytes_from_cache
                                   + other.bytes_from_cache)
        total = merged.bytes_from_storage + merged.bytes_from_cache
        merged.cache_hit_rate = (merged.bytes_from_cache / total
                                 if total > 0 else 0.0)
        return merged

    def scaled(self, factor: float) -> "ResourceTrace":
        """All time and byte quantities scaled by ``factor`` (> 0).

        Scaling is attribution-preserving: fractions are ratios of
        thread-seconds, so a uniformly scaled trace diagnoses identically.
        """
        if factor <= 0:
            raise SimulationError(f"scale factor must be positive: {factor}")
        scaled = ResourceTrace(duration=self.duration * factor,
                               threads=self.threads,
                               cache_hit_rate=self.cache_hit_rate)
        for category in TRACE_CATEGORIES:
            field = f"{category}_seconds"
            setattr(scaled, field, getattr(self, field) * factor)
        scaled.bytes_from_storage = self.bytes_from_storage * factor
        scaled.bytes_from_cache = self.bytes_from_cache * factor
        return scaled

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Flatten to JSON-serializable primitives (profile-cache format)."""
        return {field.name: getattr(self, field.name)
                for field in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ResourceTrace":
        return cls(**payload)


# -- generator bracketing helpers -------------------------------------------

def timed(sim: Simulation, trace: Optional[ResourceTrace], category: str,
          generator: Generator[Event, None, None],
          ) -> Generator[Event, None, None]:
    """Run a sub-process generator, charging its elapsed time to
    ``category``.  With ``trace=None`` this is a transparent pass-through,
    so tracing never changes event scheduling."""
    if trace is None:
        yield from generator
        return
    start = sim.now
    yield from generator
    trace.add(category, sim.now - start)


def timed_wait(sim: Simulation, trace: Optional[ResourceTrace],
               category: str, event: Event,
               ) -> Generator[Event, None, None]:
    """Wait for ``event``, charging the wait to ``category``."""
    if trace is None:
        yield event
        return
    start = sim.now
    yield event
    trace.add(category, sim.now - start)
