"""An LRU page cache.

Models the operating-system page cache on the training VM.  Entries are
(key, size) pairs at whatever granularity the caller reads -- the simulated
backend reads job-sized chunks, so partial caching of large files behaves
like real page-level caching.

The classic behaviours the paper relies on emerge from plain LRU:

* dataset fits in RAM -> second epoch hits entirely (Sec. 4.2 obs. 1);
* dataset slightly exceeds RAM -> sequential re-reads evict the pages just
  before they would be needed (scan thrashing), so the second epoch gets
  ~zero hits, matching the paper's binary fits/doesn't-fit observation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.errors import StorageError


class PageCache:
    """Byte-budgeted LRU cache over opaque keys."""

    def __init__(self, capacity_bytes: float, name: str = "page-cache"):
        if capacity_bytes < 0:
            raise StorageError("cache capacity must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        self.name = name
        self._entries: OrderedDict[Hashable, float] = OrderedDict()
        self._used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries -------------------------------------------------------------

    @property
    def used_bytes(self) -> float:
        """Bytes currently cached."""
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit, 0.0 if never queried."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- operations ----------------------------------------------------------

    def lookup(self, key: Hashable) -> bool:
        """Check for ``key``; counts a hit/miss and refreshes recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: Hashable, nbytes: float) -> None:
        """Cache ``nbytes`` under ``key``, evicting LRU entries as needed.

        Objects larger than the whole cache are not admitted (the kernel
        would never keep a single streaming read that exceeds RAM).
        """
        if nbytes < 0:
            raise StorageError(f"negative object size: {nbytes}")
        if nbytes > self.capacity_bytes:
            return
        if key in self._entries:
            self._used -= self._entries.pop(key)
        while self._used + nbytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
            self.evictions += 1
        self._entries[key] = float(nbytes)
        self._used += float(nbytes)

    def drop(self) -> None:
        """Drop all cached pages (the paper's ``echo 3 > drop_caches``)."""
        self._entries.clear()
        self._used = 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters, keeping contents."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
