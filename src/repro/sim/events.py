"""A minimal discrete-event simulation kernel.

The kernel follows the simpy model without the dependency: a
:class:`Simulation` owns a priority queue of timestamped events, and a
:class:`Process` wraps a Python generator that ``yield``s events.  When a
yielded event triggers, the process resumes with the event's value.

Only the features the storage/CPU models need are implemented, which keeps
the kernel small enough to test exhaustively:

* :class:`Timeout` -- fires after a simulated delay.
* :class:`Event` -- manually triggered (used by resources and links).
* :class:`Process` -- itself an event that triggers when the generator
  returns, so processes can wait on each other.
* :func:`all_of` -- barrier over a list of events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError

#: Type of the generators that drive processes.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence inside a simulation.

    An event starts *pending*, is *triggered* exactly once with a value (or
    an exception), and then runs its callbacks when the simulation processes
    it.  Triggering twice is a bug and raises :class:`SimulationError`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered",
                 "_processed")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False   # value decided, queued for its timestamp
        self._processed = False   # timestamp reached, callbacks ran

    @property
    def triggered(self) -> bool:
        """Whether the event already fired (value available)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's timestamp has been reached by the clock."""
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` simulated seconds."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay`` seconds."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule(self, delay)
        return self

    def _resolve(self) -> None:
        """Run callbacks; called by the simulation at the event's timestamp."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """Drives a generator; the process is an event that fires on return."""

    __slots__ = ("_generator", "name")

    def __init__(self, sim: "Simulation", generator: ProcessGenerator,
                 name: str = "process"):
        super().__init__(sim)
        self._generator = generator
        self.name = name
        # Bootstrap: resume the generator once the simulation starts.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of the event that fired."""
        while True:
            try:
                if event._exception is not None:
                    target = self._generator.throw(event._exception)
                else:
                    target = self._generator.send(event._value)
            except StopIteration as stop:
                super().succeed(stop.value)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, "
                    "expected an Event"
                )
            if target._processed:
                # The event's timestamp has already passed: resume in-line.
                event = target
                continue
            target.callbacks.append(self._resume)
            return


def all_of(sim: "Simulation", events: Iterable[Event]) -> Event:
    """Return an event that fires once every event in ``events`` has fired.

    The resulting value is the list of the individual event values in input
    order.  An empty iterable yields an immediately-triggered event.
    """
    pending = list(events)
    barrier = Event(sim)
    remaining = len(pending)
    if remaining == 0:
        return barrier.succeed([])

    values: list[Any] = [None] * remaining
    counter = {"n": remaining}

    def make_callback(index: int) -> Callable[[Event], None]:
        def callback(event: Event) -> None:
            if event._exception is not None:
                if not barrier.triggered:
                    barrier.fail(event._exception)
                return
            values[index] = event._value
            counter["n"] -= 1
            if counter["n"] == 0 and not barrier.triggered:
                barrier.succeed(values)

        return callback

    for i, event in enumerate(pending):
        if event._processed:
            make_callback(i)(event)
        else:
            event.callbacks.append(make_callback(i))
    return barrier


class Simulation:
    """The event loop: a clock plus a priority queue of pending events."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._processes_started = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    # -- public construction helpers ---------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str = "process") -> Process:
        """Start a process driven by ``generator``."""
        self._processes_started += 1
        return Process(self, generator, name=name)

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        timestamp, _, event = heapq.heappop(self._queue)
        if timestamp < self._now:
            raise SimulationError("time went backwards")
        self._now = timestamp
        event._resolve()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulated time.
        """
        while self._queue:
            timestamp = self._queue[0][0]
            if until is not None and timestamp > until:
                self._now = until
                return self._now
            self.step()
        return self._now

    def run_process(self, generator: ProcessGenerator,
                    name: str = "main") -> Any:
        """Convenience: start a process, run to completion, return its value.

        Raises :class:`DeadlockError` if the queue drains before the process
        finishes (some event was never triggered).
        """
        process = self.process(generator, name=name)
        self.run()
        if not process.triggered:
            raise DeadlockError(
                f"simulation drained before process {name!r} completed"
            )
        if process._exception is not None:
            raise process._exception
        return process.value
