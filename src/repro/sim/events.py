"""A minimal discrete-event simulation kernel.

The kernel follows the simpy model without the dependency: a
:class:`Simulation` owns a priority queue of timestamped events, and a
:class:`Process` wraps a Python generator that ``yield``s events.  When a
yielded event triggers, the process resumes with the event's value.

Only the features the storage/CPU models need are implemented, which keeps
the kernel small enough to test exhaustively:

* :class:`Timeout` -- fires after a simulated delay.
* :class:`Event` -- manually triggered (used by resources and links).
* :class:`Process` -- itself an event that triggers when the generator
  returns, so processes can wait on each other.
* :func:`all_of` -- barrier over a list of events.

The hot path is deliberately allocation-light: callback lists are created
lazily (most events carry exactly one callback), scheduling is inlined
into :meth:`Event.succeed`/:class:`Timeout` instead of routing through a
helper, and the :meth:`Simulation.run` loop resolves events without a
per-event method-call chain.  :attr:`Simulation.events_processed` counts
resolved events; because the kernel is deterministic, that counter is a
machine-independent proxy for simulation cost (``make bench-check``).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, SimulationError

#: Type of the generators that drive processes.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence inside a simulation.

    An event starts *pending*, is *triggered* exactly once with a value (or
    an exception), and then runs its callbacks when the simulation processes
    it.  Triggering twice is a bug and raises :class:`SimulationError`.

    ``callbacks`` is ``None`` until the first callback is attached, a bare
    callable while there is exactly one (the overwhelmingly common case,
    so the kernel avoids allocating a list per event), and a list only
    from the second callback on.  Use :meth:`add_callback` rather than
    touching the attribute directly.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered",
                 "_processed")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        #: ``None`` | a single callable | a list of callables.
        self.callbacks: Any = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False   # value decided, queued for its timestamp
        self._processed = False   # timestamp reached, callbacks ran

    @property
    def triggered(self) -> bool:
        """Whether the event already fired (value available)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's timestamp has been reached by the clock."""
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback`` (upgrading single-callback storage)."""
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = callback
        elif type(callbacks) is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` simulated seconds."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._sequence += 1
        if delay:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past: {delay}")
            heappush(sim._queue, (sim._now + delay, sim._sequence, self))
        else:
            # Same-instant events skip the heap: the run loop merges this
            # FIFO with the heap in exact (timestamp, sequence) order.
            sim._fifo.append((sim._sequence, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay`` seconds."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._triggered = True
        self._exception = exception
        sim = self.sim
        sim._sequence += 1
        if delay:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past: {delay}")
            heappush(sim._queue, (sim._now + delay, sim._sequence, self))
        else:
            sim._fifo.append((sim._sequence, self))
        return self

    def _resolve(self) -> None:
        """Run callbacks; called by the simulation at the event's timestamp."""
        self._processed = True
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            if type(callbacks) is list:
                for callback in callbacks:
                    callback(self)
            else:
                callbacks(self)
        elif self._exception is not None:
            # A failure nobody is watching must not vanish.
            raise self._exception


class Timeout(Event):
    """An event that fires automatically after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Inlined Event.__init__ + scheduling: timeouts are the single most
        # allocated object in a run, and the super().__init__ chain plus a
        # _schedule call measurably slows the kernel.
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._exception = None
        self._triggered = True
        self._processed = False
        self.delay = delay
        sim._sequence += 1
        if delay:
            heappush(sim._queue, (sim._now + delay, sim._sequence, self))
        else:
            sim._fifo.append((sim._sequence, self))


class Process(Event):
    """Drives a generator; the process is an event that fires on return."""

    __slots__ = ("_generator", "name", "_resume_cb")

    def __init__(self, sim: "Simulation", generator: ProcessGenerator,
                 name: str = "process"):
        super().__init__(sim)
        self._generator = generator
        self.name = name
        # One bound method for the process lifetime instead of a fresh
        # bound-method object per yielded event.
        self._resume_cb = self._resume
        # Bootstrap: resume the generator once the simulation starts.
        bootstrap = Event(sim)
        bootstrap.callbacks = self._resume_cb
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of the event that fired."""
        generator = self._generator
        while True:
            try:
                if event._exception is not None:
                    target = generator.throw(event._exception)
                else:
                    target = generator.send(event._value)
            except StopIteration as stop:
                super().succeed(stop.value)
                return
            except Exception as error:
                # A dying process becomes a *failed* event: watchers
                # (all_of barriers, joining processes) receive the
                # exception through the normal event path; if nobody is
                # watching, the run loop re-raises it as unhandled.
                super().fail(error)
                return
            try:
                if target._processed:
                    # The event's timestamp already passed: resume in-line.
                    event = target
                    continue
                callbacks = target.callbacks
            except AttributeError:
                raise SimulationError(
                    f"process {self.name!r} yielded "
                    f"{type(target).__name__}, expected an Event"
                ) from None
            if callbacks is None:
                target.callbacks = self._resume_cb
            elif type(callbacks) is list:
                callbacks.append(self._resume_cb)
            else:
                target.callbacks = [callbacks, self._resume_cb]
            return


class _AllOfState:
    """Shared completion state for :func:`all_of` (no per-event closures)."""

    __slots__ = ("barrier", "pending", "remaining")

    def __init__(self, barrier: Event, pending: list[Event]):
        self.barrier = barrier
        self.pending = pending
        self.remaining = len(pending)

    def on_event(self, event: Event) -> None:
        barrier = self.barrier
        if event._exception is not None:
            if not barrier._triggered:
                barrier.fail(event._exception)
            return
        self.remaining -= 1
        if self.remaining == 0 and not barrier._triggered:
            barrier.succeed([item._value for item in self.pending])


def all_of(sim: "Simulation", events: Iterable[Event]) -> Event:
    """Return an event that fires once every event in ``events`` has fired.

    The resulting value is the list of the individual event values in input
    order.  An empty iterable yields an immediately-triggered event.
    """
    pending = list(events)
    barrier = Event(sim)
    if not pending:
        return barrier.succeed([])
    state = _AllOfState(barrier, pending)
    on_event = state.on_event
    for event in pending:
        if event._processed:
            on_event(event)
        else:
            callbacks = event.callbacks
            if callbacks is None:
                event.callbacks = on_event
            elif type(callbacks) is list:
                callbacks.append(on_event)
            else:
                event.callbacks = [callbacks, on_event]
    return barrier


class Simulation:
    """The event loop: a clock plus a priority queue of pending events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        #: Events triggered with zero delay while the clock sits at _now.
        #: They bypass the heap; the run loop merges both structures in
        #: exact (timestamp, sequence) order, so the fast lane is purely
        #: an allocation/heap-traffic optimisation.
        self._fifo: deque[tuple[int, Event]] = deque()
        self._sequence = 0
        self._processes_started = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events resolved since construction.

        The kernel is deterministic, so for a fixed workload this counter
        is identical across hosts and runs -- the CI perf smoke asserts it
        instead of flaky wall-clock numbers.
        """
        return self._events_processed

    # -- public construction helpers ---------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str = "process") -> Process:
        """Start a process driven by ``generator``."""
        self._processes_started += 1
        return Process(self, generator, name=name)

    # -- execution ----------------------------------------------------------

    def _pop_next(self) -> Optional[Event]:
        """Pop the globally next event in (timestamp, sequence) order,
        advancing the clock; ``None`` when both structures are empty."""
        fifo = self._fifo
        queue = self._queue
        if fifo:
            # The heap never holds timestamps below _now, so a heap entry
            # only precedes the FIFO head when it is *at* _now with a
            # smaller sequence number (scheduled earlier).
            if queue:
                head = queue[0]
                if head[0] <= self._now and head[1] < fifo[0][0]:
                    timestamp, _, event = heappop(queue)
                    self._now = timestamp
                    return event
            return fifo.popleft()[1]
        if queue:
            timestamp, _, event = heappop(queue)
            if timestamp < self._now:
                raise SimulationError("time went backwards")
            self._now = timestamp
            return event
        return None

    def step(self) -> None:
        """Process the single next event."""
        event = self._pop_next()
        if event is None:
            raise IndexError("step from an empty simulation")
        self._events_processed += 1
        event._resolve()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Events stamped past ``until`` stay queued; the clock is left at
        ``until`` so a later ``run()`` call continues where this one
        stopped.  Returns the final simulated time.
        """
        queue = self._queue
        fifo = self._fifo
        events_processed = self._events_processed
        try:
            while True:
                # Merge the same-instant FIFO with the heap in exact
                # (timestamp, sequence) order; see _pop_next (inlined here
                # because this loop dominates simulation cost).
                if fifo:
                    if queue:
                        head = queue[0]
                        if head[0] <= self._now and head[1] < fifo[0][0]:
                            event = heappop(queue)[2]
                        else:
                            event = fifo.popleft()[1]
                    else:
                        event = fifo.popleft()[1]
                elif queue:
                    timestamp = queue[0][0]
                    if until is not None and timestamp > until:
                        self._now = until
                        break
                    event = heappop(queue)[2]
                    self._now = timestamp
                else:
                    break
                events_processed += 1
                event._processed = True
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    if type(callbacks) is list:
                        for callback in callbacks:
                            callback(event)
                    else:
                        callbacks(event)
                elif event._exception is not None:
                    # A failure nobody is watching must not vanish.
                    raise event._exception
        finally:
            self._events_processed = events_processed
        return self._now

    def run_process(self, generator: ProcessGenerator,
                    name: str = "main") -> Any:
        """Convenience: start a process, run to completion, return its value.

        Raises :class:`DeadlockError` if the queue drains before the process
        finishes (some event was never triggered).
        """
        process = self.process(generator, name=name)
        self.run()
        if not process.triggered:
            raise DeadlockError(
                f"simulation drained before process {name!r} completed"
            )
        if process._exception is not None:
            raise process._exception
        return process.value
