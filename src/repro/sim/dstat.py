"""dstat-style resource counters for simulated runs.

The paper runs ``dstat`` alongside every profile to capture disk/network
load.  :class:`Dstat` provides the same information for simulated runs:

* a sampled time series of network read/write throughput and page-cache
  occupancy (adaptive sampling interval so long offline runs do not bloat
  the event queue), and
* aggregate statistics -- the "average network read speed" columns of
  Table 4 come from :meth:`Dstat.summary`.

Start it before the run, call :meth:`stop` when the run's main process
finishes; the sampler process then terminates at its next tick and the
simulation can drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.sim.cluster import StorageCluster
from repro.sim.cpu import Machine
from repro.sim.events import Event, Simulation
from repro.units import MB


@dataclass
class DstatSample:
    """One sampled row of system counters."""

    time: float
    read_bw: float
    write_bw: float
    memory_bw: float
    cache_used: float
    active_read_streams: int


@dataclass
class DstatSummary:
    """Aggregates over a window, mirroring the paper's reported averages."""

    duration: float
    bytes_read: float
    bytes_written: float
    cache_hit_rate: float
    avg_read_bw: float
    avg_write_bw: float
    peak_read_bw: float = 0.0
    samples: int = 0

    def describe(self) -> str:
        return (f"reads {self.avg_read_bw / MB:.1f} MB/s avg "
                f"({self.peak_read_bw / MB:.1f} peak), "
                f"writes {self.avg_write_bw / MB:.1f} MB/s, "
                f"cache hit rate {self.cache_hit_rate:.0%}")


class Dstat:
    """Samples cluster/machine counters during a simulated run."""

    def __init__(self, sim: Simulation, cluster: StorageCluster,
                 machine: Machine, interval: float = 1.0,
                 max_samples: int = 4000):
        self.sim = sim
        self.cluster = cluster
        self.machine = machine
        self.interval = interval
        self.max_samples = max_samples
        self.samples: list[DstatSample] = []
        self._stopped = False
        self._stop_time: Optional[float] = None
        self._start_time = sim.now
        self._start_read = cluster.read_link.bytes_moved
        self._start_write = cluster.write_link.bytes_moved
        self._last_read = self._start_read
        self._last_write = self._start_write
        self._last_mem = machine.memory_link.bytes_moved
        self._last_time = sim.now
        self._process = sim.process(self._sample_loop(), name="dstat")

    def stop(self) -> None:
        """Ask the sampler to terminate at its next tick.

        The stop moment also closes the measurement window, so summary
        averages exclude the sampler's idle tail.
        """
        self._stopped = True
        self._stop_time = self.sim.now

    def _sample_loop(self) -> Generator[Event, None, None]:
        while not self._stopped:
            yield self.sim.timeout(self.interval)
            self._record()
            if len(self.samples) >= self.max_samples:
                # Long run: halve the sampling rate, thin the series.
                self.interval *= 2.0
                self.samples = self.samples[::2]

    def _record(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed <= 0:
            return
        read_bytes = self.cluster.read_link.bytes_moved
        write_bytes = self.cluster.write_link.bytes_moved
        mem_bytes = self.machine.memory_link.bytes_moved
        self.samples.append(DstatSample(
            time=now,
            read_bw=(read_bytes - self._last_read) / elapsed,
            write_bw=(write_bytes - self._last_write) / elapsed,
            memory_bw=(mem_bytes - self._last_mem) / elapsed,
            cache_used=self.machine.page_cache.used_bytes,
            active_read_streams=self.cluster.read_link.active_streams,
        ))
        self._last_read = read_bytes
        self._last_write = write_bytes
        self._last_mem = mem_bytes
        self._last_time = now

    def summary(self) -> DstatSummary:
        """Aggregate counters since construction."""
        end = self._stop_time if self._stop_time is not None else self.sim.now
        duration = max(end - self._start_time, 1e-12)
        bytes_read = self.cluster.read_link.bytes_moved - self._start_read
        bytes_written = self.cluster.write_link.bytes_moved - self._start_write
        peak = max((s.read_bw for s in self.samples), default=0.0)
        return DstatSummary(
            duration=duration,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            cache_hit_rate=self.machine.page_cache.hit_rate,
            avg_read_bw=bytes_read / duration,
            avg_write_bw=bytes_written / duration,
            peak_read_bw=peak,
            samples=len(self.samples),
        )
