"""Max-min fair shared bandwidth links.

A :class:`SharedBandwidth` models a network link or a storage data path:
an aggregate capacity shared by concurrent transfers, where each stream is
additionally capped (Ceph serves a single sequential stream at ~219 MB/s
while eight streams together reach ~910 MB/s -- paper Table 3).

With identical per-stream caps, the max-min fair allocation is uniform::

    rate_per_stream = min(per_stream_cap, aggregate_cap / n_active)

The link recomputes rates whenever a transfer starts or finishes and
reschedules the next completion, so concurrency effects (a slow reader
joining speeds nobody up, a finishing reader speeds everyone up) emerge
naturally in simulated time.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.events import Event, Simulation

#: Transfers whose remaining volume drops below this are considered done.
_EPSILON_BYTES = 1e-6


class _Transfer:
    __slots__ = ("event", "remaining")

    def __init__(self, event: Event, remaining: float):
        self.event = event
        self.remaining = remaining


class SharedBandwidth:
    """A capacity-shared link with per-stream caps and max-min fairness."""

    def __init__(self, sim: Simulation, aggregate_bw: float,
                 per_stream_bw: Optional[float] = None, name: str = "link"):
        if aggregate_bw <= 0:
            raise SimulationError("aggregate bandwidth must be positive")
        if per_stream_bw is not None and per_stream_bw <= 0:
            raise SimulationError("per-stream bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.aggregate_bw = float(aggregate_bw)
        self.per_stream_bw = float(per_stream_bw or aggregate_bw)
        self._active: list[_Transfer] = []
        self._last_update = 0.0
        self._version = 0
        #: Cumulative bytes moved over the link (for dstat counters).
        self.bytes_moved = 0.0
        self.total_transfers = 0
        self.peak_streams = 0

    # -- queries -------------------------------------------------------------

    @property
    def active_streams(self) -> int:
        """Number of in-flight transfers."""
        return len(self._active)

    def stream_rate(self, n_active: Optional[int] = None) -> float:
        """Fair per-stream rate for ``n_active`` concurrent streams."""
        n = self.active_streams if n_active is None else n_active
        if n <= 0:
            return 0.0
        return min(self.per_stream_bw, self.aggregate_bw / n)

    def current_throughput(self) -> float:
        """Instantaneous aggregate throughput in bytes/second."""
        return self.stream_rate() * self.active_streams

    # -- transfer lifecycle ----------------------------------------------------

    def transfer(self, nbytes: float) -> Event:
        """Start moving ``nbytes``; the returned event fires on completion."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        event = self.sim.event()
        self.total_transfers += 1
        if nbytes <= _EPSILON_BYTES:
            return event.succeed()
        self._advance()
        self._active.append(_Transfer(event, float(nbytes)))
        self.peak_streams = max(self.peak_streams, len(self._active))
        self._reschedule()
        return event

    def transfer_time(self, nbytes: float, n_streams: int = 1) -> float:
        """Analytic helper: seconds to move ``nbytes`` on one of
        ``n_streams`` equally-loaded streams (no event machinery)."""
        rate = self.stream_rate(n_streams)
        if rate <= 0:
            raise SimulationError("no capacity available")
        return nbytes / rate

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        """Account for progress made since the last rate change."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0 or not self._active:
            return
        rate = self.stream_rate()
        progress = elapsed * rate
        for item in self._active:
            step = min(progress, item.remaining)
            item.remaining -= step
            self.bytes_moved += step

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest completion under current rates."""
        self._version += 1
        if not self._active:
            return
        version = self._version
        rate = self.stream_rate()
        shortest = min(item.remaining for item in self._active)
        delay = max(shortest, 0.0) / rate
        wake = self.sim.timeout(delay)
        wake.callbacks.append(lambda _event: self._on_wake(version))

    def _on_wake(self, version: int) -> None:
        if version != self._version:
            return  # A newer arrival already rescheduled; this wake is stale.
        self._advance()
        if not self._active:
            return
        # A current-version wake was scheduled for the shortest transfer's
        # completion, so the shortest *is* done now.  Completing at least
        # one transfer per wake also guarantees progress when the residual
        # delay underflows the clock's resolution (now + delay == now for
        # sub-femtosecond residues late in long simulations).
        shortest = min(item.remaining for item in self._active)
        threshold = shortest + _EPSILON_BYTES
        finished = [t for t in self._active if t.remaining <= threshold]
        finished_ids = {id(t) for t in finished}
        self._active = [t for t in self._active
                        if id(t) not in finished_ids]
        for item in finished:
            self.bytes_moved += item.remaining  # residue, bounded by epsilon
            item.event.succeed()
        self._reschedule()
