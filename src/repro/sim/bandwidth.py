"""Max-min fair shared bandwidth links.

A :class:`SharedBandwidth` models a network link or a storage data path:
an aggregate capacity shared by concurrent transfers, where each stream is
additionally capped (Ceph serves a single sequential stream at ~219 MB/s
while eight streams together reach ~910 MB/s -- paper Table 3).

With identical per-stream caps, the max-min fair allocation is uniform::

    rate_per_stream = min(per_stream_cap, aggregate_cap / n_active)

**Virtual progress time.**  Because every active stream runs at the same
fair rate, the *ordering* of transfers by remaining bytes never changes
between arrivals and departures.  The link therefore tracks one cumulative
per-stream progress integral ``P(t)`` (bytes any stream admitted at link
idle would have moved by ``t``) instead of per-transfer remaining counters.
A transfer admitted at progress ``P_a`` with ``nbytes`` to move completes
exactly when ``P(t)`` reaches the fixed threshold ``P_a + nbytes``, so
arrivals and completions are O(log n) min-heap operations -- no rescan of
the active set ever happens on the transfer hot path, and byte accounting
is a closed-form delta over the progress integral.

The link arms a wake-up for the earliest threshold; arrivals that change
the fair rate (or undercut the armed threshold) re-arm it, and superseded
wake-ups are ignored on arrival (identity check).  Concurrency effects (a
slow reader joining speeds nobody up, a finishing reader speeds everyone
up) still emerge naturally in simulated time, matching the historical
O(n) rescan implementation: completion times agree to float accuracy
(pinned by the differential suite in tests/sim/test_bandwidth_diff.py),
and all golden outputs are byte-identical.  The one intended departure
is batch grouping at tens-of-GB progress, where the old per-transfer
counters' rounding drift exceeded their own epsilon -- see
docs/performance.md.
"""

from __future__ import annotations

from heapq import heappop, heappush
from operator import itemgetter
from typing import Optional

from repro.errors import SimulationError
from repro.sim.events import Event, Simulation, Timeout

#: Transfers whose remaining volume drops below this are considered done.
#: Also the batch-completion window: thresholds within epsilon of the
#: earliest one finish on the same wake-up (equal-size streams admitted
#: together complete together, exactly like the historical rescan).
_EPSILON_BYTES = 1e-6

#: heap-entry admission-order key (entries are (threshold, admission,
#: admitted_progress, nbytes, event, tag) tuples).
_BY_ADMISSION = itemgetter(1)

#: Tag-then-admission key for the explicit deterministic tie-break
#: (untagged transfers sort first, amongst themselves by admission).
_BY_TAG = itemgetter(5, 1)

#: Batch-completion orderings for mathematically simultaneous finishes.
TIE_BREAKS = ("admission", "tag")


class SharedBandwidth:
    """A capacity-shared link with per-stream caps and max-min fairness.

    Counter semantics (explicit, and pinned by tests):

    * ``total_transfers`` counts every :meth:`transfer` call, including
      zero-byte transfers that complete instantly.
    * ``peak_streams`` is the maximum number of *simultaneously active*
      streams; zero-byte transfers never become active and do not touch it.
    * ``bytes_moved`` is the cumulative payload moved over the link,
      including the pro-rata progress of in-flight transfers at the
      current simulated time; zero-byte transfers contribute nothing.

    ``tie_break`` picks the completion order *within* a batch of
    mathematically simultaneous finishes (equal thresholds up to float
    rounding -- the knife-edge page-cache-thrash regime of
    docs/performance.md).  ``"admission"`` (default) completes them in
    arrival order, matching the historical active-list rescan;
    ``"tag"`` orders by the caller-supplied :meth:`transfer` tag (e.g.
    the tenant id) so the outcome of knife-edge scenarios is pinned to
    stable identities instead of float ulps and stays reproducible
    under future kernel changes.
    """

    __slots__ = ("sim", "name", "aggregate_bw", "per_stream_bw", "_heap",
                 "_admissions", "_progress", "_last_update", "_rate",
                 "_wake_event", "_wake_threshold", "_wake_cb",
                 "_completed_bytes", "_admit_sum", "total_transfers",
                 "peak_streams", "tie_break", "_batch_key", "_fault")

    def __init__(self, sim: Simulation, aggregate_bw: float,
                 per_stream_bw: Optional[float] = None, name: str = "link",
                 tie_break: str = "admission"):
        if aggregate_bw <= 0:
            raise SimulationError("aggregate bandwidth must be positive")
        if per_stream_bw is not None and per_stream_bw <= 0:
            raise SimulationError("per-stream bandwidth must be positive")
        if tie_break not in TIE_BREAKS:
            raise SimulationError(
                f"tie_break must be one of {TIE_BREAKS}, got {tie_break!r}")
        self.sim = sim
        self.name = name
        self.tie_break = tie_break
        self._batch_key = (_BY_ADMISSION if tie_break == "admission"
                           else _BY_TAG)
        self.aggregate_bw = float(aggregate_bw)
        self.per_stream_bw = float(per_stream_bw or aggregate_bw)
        #: Min-heap of (threshold, admission, admitted_progress, nbytes,
        #: event); the head is the next transfer to complete.
        self._heap: list[tuple] = []
        self._admissions = 0
        #: The per-stream progress integral P(t), rebased to 0 whenever
        #: the link drains (keeps thresholds well inside float precision).
        self._progress = 0.0
        self._last_update = 0.0
        #: Fair per-stream rate while the current active set lasts.
        self._rate = 0.0
        #: The armed wake-up; wake-ups superseded by re-arming are ignored.
        self._wake_event: Optional[Event] = None
        self._wake_threshold = 0.0
        self._wake_cb = self._on_wake
        self._completed_bytes = 0.0
        #: Sum of admitted_progress over active transfers (closed-form
        #: in-flight byte accounting without touching each transfer).
        self._admit_sum = 0.0
        self.total_transfers = 0
        self.peak_streams = 0
        #: When set (a ``nbytes -> Exception`` factory), new transfers
        #: fail immediately -- the storage-blackout mode of the chaos
        #: engine (:mod:`repro.faults`).  ``None`` is the fast path.
        self._fault = None

    # -- queries -------------------------------------------------------------

    @property
    def active_streams(self) -> int:
        """Number of in-flight transfers."""
        return len(self._heap)

    def stream_rate(self, n_active: Optional[int] = None) -> float:
        """Fair per-stream rate for ``n_active`` concurrent streams."""
        n = len(self._heap) if n_active is None else n_active
        if n <= 0:
            return 0.0
        return min(self.per_stream_bw, self.aggregate_bw / n)

    def current_throughput(self) -> float:
        """Instantaneous aggregate throughput in bytes/second."""
        return self.stream_rate() * len(self._heap)

    @property
    def bytes_moved(self) -> float:
        """Cumulative bytes moved, including in-flight progress to now."""
        n = len(self._heap)
        if n == 0:
            return self._completed_bytes
        progress = self._progress + (
            (self.sim._now - self._last_update) * self._rate)
        return self._completed_bytes + n * progress - self._admit_sum

    # -- transfer lifecycle ----------------------------------------------------

    def transfer(self, nbytes: float, tag: str = "") -> Event:
        """Start moving ``nbytes``; the returned event fires on completion.

        ``tag`` labels the transfer for the ``"tag"`` tie-break policy
        (ignored under ``"admission"``); untagged transfers share the
        empty label and fall back to admission order among themselves.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        event = Event(self.sim)
        self.total_transfers += 1
        if self._fault is not None:
            return event.fail(self._fault(nbytes))
        if nbytes <= _EPSILON_BYTES:
            return event.succeed()
        now = self.sim._now
        elapsed = now - self._last_update
        if elapsed > 0.0 and self._rate:
            self._progress += elapsed * self._rate
        self._last_update = now
        admit = self._progress
        threshold = admit + nbytes
        self._admissions += 1
        heap = self._heap
        heappush(heap, (threshold, self._admissions, admit, nbytes, event,
                        tag))
        self._admit_sum += admit
        n = len(heap)
        if n > self.peak_streams:
            self.peak_streams = n
        rate = self.aggregate_bw / n
        per_stream = self.per_stream_bw
        if per_stream < rate:
            rate = per_stream
        if (rate != self._rate or self._wake_event is None
                or heap[0][0] < self._wake_threshold):
            # The fair share changed or this transfer finishes before the
            # armed wake-up: re-arm.  Otherwise the pending wake-up still
            # targets the correct earliest completion and arrival is O(log n)
            # with no new event scheduled at all.
            self._rate = rate
            self._arm_wake()
        return event

    def transfer_time(self, nbytes: float, n_streams: int = 1) -> float:
        """Analytic helper: seconds to move ``nbytes`` on one of
        ``n_streams`` equally-loaded streams (no event machinery)."""
        rate = self.stream_rate(n_streams)
        if rate <= 0:
            raise SimulationError("no capacity available")
        return nbytes / rate

    # -- degradation (chaos engine) -----------------------------------------

    def set_capacity(self, aggregate_bw: Optional[float] = None,
                     per_stream_bw: Optional[float] = None) -> None:
        """Change the link's capacity mid-simulation (fault injection).

        Progress accrued at the old fair rate is banked first, so every
        in-flight transfer keeps the bytes it already moved; thresholds
        live in progress (byte) space and need no rewrite.  When the
        fair rate changes with transfers in flight, the wake-up is
        re-armed (one Timeout).  Never calling this method costs
        nothing: the constructor wires no degradation state and the
        transfer hot path is untouched.
        """
        if aggregate_bw is not None and aggregate_bw <= 0:
            raise SimulationError("aggregate bandwidth must be positive")
        if per_stream_bw is not None and per_stream_bw <= 0:
            raise SimulationError("per-stream bandwidth must be positive")
        now = self.sim._now
        elapsed = now - self._last_update
        if elapsed > 0.0 and self._rate:
            self._progress += elapsed * self._rate
        self._last_update = now
        if aggregate_bw is not None:
            self.aggregate_bw = float(aggregate_bw)
        if per_stream_bw is not None:
            self.per_stream_bw = float(per_stream_bw)
        heap = self._heap
        if not heap:
            return
        rate = self.aggregate_bw / len(heap)
        per_stream = self.per_stream_bw
        if per_stream < rate:
            rate = per_stream
        if rate != self._rate:
            self._rate = rate
            self._arm_wake()

    def set_fault(self, factory) -> None:
        """Blackout mode: fail new transfers with ``factory(nbytes)``."""
        self._fault = factory

    def clear_fault(self) -> None:
        """Leave blackout mode; new transfers move bytes again."""
        self._fault = None

    def abort_active(self, factory) -> int:
        """Fail every in-flight transfer with a ``factory(nbytes)``
        exception, in admission order; returns the abort count.

        The blackout shape of the chaos engine: waiting processes
        receive the exception at the current instant and the link is
        left idle (progress rebased to zero).  The partial progress of
        aborted transfers is discarded from ``bytes_moved`` -- those
        bytes died with their transfers.
        """
        heap = self._heap
        if not heap:
            return 0
        aborted = sorted(heap, key=_BY_ADMISSION)
        heap.clear()
        self._progress = 0.0
        self._last_update = self.sim._now
        self._admit_sum = 0.0
        self._rate = 0.0
        self._wake_event = None
        for item in aborted:
            item[4].fail(factory(item[3]))
        return len(aborted)

    # -- internals ----------------------------------------------------------

    def _arm_wake(self) -> None:
        """Arm a wake-up for the earliest completion under current rates."""
        threshold = self._heap[0][0]
        delay = (threshold - self._progress) / self._rate
        if delay < 0.0:
            delay = 0.0
        wake = Timeout(self.sim, delay)
        wake.callbacks = self._wake_cb
        self._wake_event = wake
        self._wake_threshold = threshold

    def _on_wake(self, event: Event) -> None:
        if event is not self._wake_event:
            return  # A later arrival re-armed the wake-up; this one is stale.
        now = self.sim._now
        elapsed = now - self._last_update
        if elapsed > 0.0:
            self._progress += elapsed * self._rate
        self._last_update = now
        heap = self._heap
        target = heap[0][0]
        if self._progress < target:
            # The wake-up was armed for the head's completion, so the head
            # *is* done now.  Snapping the integral forward also guarantees
            # progress when the residual delay underflows the clock's
            # resolution (now + delay == now for sub-femtosecond residues
            # late in long simulations).
            self._progress = target
        # Batch window: epsilon in *remaining-bytes* space plus a relative
        # term covering float rounding of the thresholds themselves.  On a
        # link that never drains, the progress integral grows to tens of
        # GB, where one ulp exceeds the absolute epsilon -- without the
        # relative term, mathematically simultaneous completions would
        # split into separate wake-ups.
        cutoff = target + _EPSILON_BYTES + target * 1e-12
        finished = [heappop(heap)]
        while heap and heap[0][0] <= cutoff:
            finished.append(heappop(heap))
        if len(finished) > 1:
            # Complete batches in tie-break order: admission (default)
            # matches the historical active-list scan; tag order pins
            # knife-edge scenarios to stable identities.  Heap order
            # would rank ulp-level threshold differences above either.
            finished.sort(key=self._batch_key)
        completed = self._completed_bytes
        admit_sum = self._admit_sum
        for item in finished:
            completed += item[3]
            admit_sum -= item[2]
            item[4].succeed()
        self._completed_bytes = completed
        n = len(heap)
        if n == 0:
            # Idle: rebase the progress integral so thresholds stay small
            # and float resolution never degrades over long simulations.
            self._progress = 0.0
            self._admit_sum = 0.0
            self._rate = 0.0
            self._wake_event = None
            return
        self._admit_sum = admit_sum
        rate = self.aggregate_bw / n
        per_stream = self.per_stream_bw
        if per_stream < rate:
            rate = per_stream
        self._rate = rate
        self._arm_wake()
