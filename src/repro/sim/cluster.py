"""The Ceph-like object store.

A :class:`StorageCluster` combines a :class:`DeviceProfile` with shared
read/write links and a metadata service.  Reads and writes are simulation
processes (generators to ``yield from`` inside a process):

* ``read()`` -- optionally pays a per-file open (metadata slot + latency),
  then streams bytes over the max-min-fair read link.  If a
  :class:`~repro.sim.pagecache.PageCache` is supplied, hits are served from
  memory instead and misses populate the cache.
* ``write()`` -- streams bytes over the write link.

The cluster does not store payloads -- only the byte accounting matters for
throughput -- but it tracks cumulative counters that
:class:`~repro.sim.dstat.Dstat` turns into the paper's "network reads in
MB/s" columns.
"""

from __future__ import annotations

from typing import Generator, Hashable, Optional

from repro.sim.bandwidth import SharedBandwidth
from repro.sim.events import Event, Simulation
from repro.sim.pagecache import PageCache
from repro.sim.resources import Resource
from repro.sim.storage import DeviceProfile


class StorageCluster:
    """Simulated remote object store (Ceph over a 10 Gb/s link)."""

    def __init__(self, sim: Simulation, profile: DeviceProfile,
                 memory_link: Optional[SharedBandwidth] = None,
                 tie_break: str = "admission"):
        self.sim = sim
        self.profile = profile
        self.read_link = SharedBandwidth(
            sim, profile.aggregate_bw, profile.stream_bw,
            name=f"{profile.name}-read", tie_break=tie_break)
        self.write_link = SharedBandwidth(
            sim, profile.write_bw, profile.stream_bw,
            name=f"{profile.name}-write", tie_break=tie_break)
        self.metadata = Resource(sim, profile.metadata_slots,
                                 name=f"{profile.name}-mds")
        #: Client-side memory path used to serve page-cache hits.
        self.memory_link = memory_link
        # Counters.
        self.files_opened = 0
        self.cache_bytes_read = 0.0

    # -- read path ------------------------------------------------------------

    def open_file(self, pipeline_path: bool = True
                  ) -> Generator[Event, None, None]:
        """Pay the per-file open cost through the metadata service."""
        latency = (self.profile.pipeline_open_latency if pipeline_path
                   else self.profile.open_latency)
        self.files_opened += 1
        yield from self.metadata.use(latency)

    def read(self, key: Hashable, nbytes: float,
             page_cache: Optional[PageCache] = None,
             open_file: bool = False, pipeline_path: bool = True,
             ) -> Generator[Event, None, str]:
        """Read ``nbytes`` under ``key``; returns ``"cache"`` or ``"storage"``.

        ``open_file`` should be true in file-per-sample mode (the paper's
        ``unprocessed`` strategies) and false for sequential record
        streams.  Callers that need the links' ``"tag"`` tie-break (the
        serve layer's per-tenant transfers) call
        ``read_link.transfer(nbytes, tag)`` directly, as the simulated
        backend's hot loops do.
        """
        if page_cache is not None and page_cache.lookup(key):
            self.cache_bytes_read += nbytes
            if self.memory_link is not None:
                yield self.memory_link.transfer(nbytes)
            return "cache"
        if open_file:
            # Inlined open_file (one generator frame on the read path).
            latency = (self.profile.pipeline_open_latency if pipeline_path
                       else self.profile.open_latency)
            self.files_opened += 1
            yield from self.metadata.use(latency)
        yield self.read_link.transfer(nbytes)
        if page_cache is not None:
            page_cache.insert(key, nbytes)
        return "storage"

    # -- write path ------------------------------------------------------------

    def write(self, nbytes: float) -> Generator[Event, None, None]:
        """Stream ``nbytes`` to the cluster."""
        yield self.write_link.transfer(nbytes)

    # -- accounting -----------------------------------------------------------

    @property
    def bytes_read_from_storage(self) -> float:
        """Bytes actually moved over the network read link.

        Live: includes the pro-rata progress of in-flight transfers at
        the current simulated time (closed-form on the virtual-progress
        link, no per-stream scan).
        """
        return self.read_link.bytes_moved

    @property
    def bytes_written(self) -> float:
        """Bytes moved over the write link, including in-flight progress."""
        return self.write_link.bytes_moved
