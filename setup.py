"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
``pip install -e .`` cannot build a modern editable wheel.  This shim lets
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
on machines that do have wheel) install the package; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
