"""Objective weights change the answer (paper Sec. 3.1 scenario).

Hyperparameter tuning before a deadline wants low preprocessing time AND
high throughput -- weights (w_p, w_s, w_t) = (1, 0, 1).  A throughput-
only objective (0, 0, 1) is the paper's recommended default.  This
example profiles the CV pipeline once and ranks it under both
objectives, plus a storage-constrained one.

Run:  python examples/deadline_tuning.py
"""

from repro import (ObjectiveWeights, RunConfig, SimulatedBackend,
                   StrategyAnalysis, StrategyProfiler, get_pipeline)

SCENARIOS = [
    ("throughput only (default)", ObjectiveWeights(0, 0, 1)),
    ("deadline: tune a model by tomorrow", ObjectiveWeights(1, 0, 1)),
    ("storage-constrained cluster", ObjectiveWeights(0, 1, 1)),
]


def main() -> None:
    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(get_pipeline("CV"),
                                         config=RunConfig())
    analysis = StrategyAnalysis(profiles)

    for label, weights in SCENARIOS:
        best = analysis.best(weights)
        print(f"{label}:")
        print(f"  weights (w_p, w_s, w_t) = ({weights.preprocessing:g}, "
              f"{weights.storage:g}, {weights.throughput:g})")
        print(f"  -> materialise {best.strategy.split_name!r}: "
              f"{best.throughput:,.0f} SPS, "
              f"{best.storage_bytes / 1e9:,.0f} GB, "
              f"{best.preprocessing_seconds / 3600:.1f} h preprocessing\n")

    print("full ranking under the deadline objective:")
    ranked = analysis.ranked(ObjectiveWeights(1, 0, 1)).select(
        ["strategy", "throughput_sps", "preprocessing_s", "score"])
    print(ranked.to_markdown())


if __name__ == "__main__":
    main()
