"""Inserting a new step into a profiled pipeline (paper Sec. 4.6).

Adds a greyscale conversion to the CV pipeline in two positions --
before and after pixel-centering -- and re-profiles.  Placing the
size-reducing step early lifts the pipeline's peak throughput ~2.8x
(Fig. 14), the paper's demonstration that step *order* shifts every
downstream trade-off.

Run:  python examples/pipeline_surgery.py
"""

from repro import RunConfig, SimulatedBackend, StrategyProfiler, get_pipeline
from repro.core.report import storage_vs_throughput


def main() -> None:
    profiler = StrategyProfiler(SimulatedBackend())
    config = RunConfig()

    variants = [
        ("baseline CV", "CV"),
        ("greyscale BEFORE pixel-center (Fig. 14a)",
         "CV+greyscale-before"),
        ("greyscale AFTER pixel-center (Fig. 14b)", "CV+greyscale-after"),
    ]
    peaks = {}
    for label, name in variants:
        profiles = profiler.profile_pipeline(get_pipeline(name),
                                             config=config)
        frame = storage_vs_throughput(profiles)
        print(f"\n{label}:")
        print(frame.select(["strategy", "storage",
                            "throughput_sps"]).to_markdown())
        best = max(profiles, key=lambda p: p.throughput)
        peaks[label] = best

    baseline = peaks["baseline CV"]
    improved = peaks["greyscale BEFORE pixel-center (Fig. 14a)"]
    print(f"\npeak throughput: {baseline.throughput:,.0f} SPS "
          f"({baseline.strategy.split_name}) -> "
          f"{improved.throughput:,.0f} SPS "
          f"({improved.strategy.split_name}), "
          f"a {improved.throughput / baseline.throughput:.1f}x gain from "
          "one well-placed step")


if __name__ == "__main__":
    main()
