"""Multi-tenant serving walkthrough: traces, policies, cluster doctor.

The serving layer turns the single-job profiler into a cluster-level
what-if engine.  This example:

1. generates the contended bursty trace (8 tenants, most wanting one
   hot artifact);
2. compares all three scheduler policies on it and shows why the
   cache-aware policy wins (offline dedup + cache co-location);
3. asks the bottleneck doctor for the cluster-level verdicts;
4. cross-checks the paper's closed-form fan-out bound against the
   co-simulation.

Run with::

    PYTHONPATH=src python examples/multi_tenant_serving.py
"""

from repro.backends import RunConfig, SimulatedBackend
from repro.core.distributed import estimate_fan_out
from repro.core.report import service_summary, tenant_table
from repro.pipelines import get_pipeline
from repro.serve import (PreprocessingService, bursty_trace,
                         diagnose_service, fan_out_frame_simulated,
                         sweep_policies)


def main() -> None:
    # -- 1. the contended trace -------------------------------------------
    trace = bursty_trace(tenants=8, seed=0)
    print("the trace (bursty, seed 0):")
    for spec in trace:
        print(f"  {spec.describe()}")
    print()

    # -- 2. every policy on the same trace --------------------------------
    result = sweep_policies(trace, slots=2)
    print("policy comparison (one shared cluster, 2 slots):")
    print(result.frame().to_markdown())
    print(f"\nbest policy: {result.best_policy()}\n")

    # -- 3. per-tenant detail + cluster doctor for the winner -------------
    report = result.report(result.best_policy())
    print(tenant_table(report).to_markdown())
    print()
    print(service_summary(report))
    print()
    print(diagnose_service(report).to_markdown())
    print()

    # -- 4. closed form vs co-simulation ----------------------------------
    plan = get_pipeline("MP3").split_at("spectrogram-encoded")
    config = RunConfig(threads=8, epochs=1)
    single = SimulatedBackend().run(plan, config).throughput
    one = estimate_fan_out(plan, config, trainers=1,
                           single_job_sps=single)
    print(f"closed-form single-trainer delivery: "
          f"{one.delivered_sps:.0f} SPS")
    print("analytic bound vs DES delivery across fan-out widths:")
    print(fan_out_frame_simulated(plan, config,
                                  trainer_counts=(1, 2, 4)).to_markdown())


if __name__ == "__main__":
    main()


# Example output (abridged):
#
# policy comparison (one shared cluster, 2 slots):
# | policy      | makespan_s | aggregate_sps | ... | deduped | bound |
# |-------------|------------|---------------|-----|---------|-------|
# | fifo        | 45442.341  | 72.263        | ... | 0       | cpu   |
# | fair-share  | 45442.341  | 72.263       | ... | 0       | cpu   |
# | cache-aware | 19436.835  | 168.946      | ... | 4       | cpu   |
#
# best policy: cache-aware
#
# cluster diagnosis [cache-aware]: bound on cpu (cpu 97%, ...)
#   1. cpu-pool-saturation: ...
