"""Quickstart: profile a pipeline and pick the best strategy.

Profiles all five strategies of the paper's CV pipeline (ImageNet-style
preprocessing) on the simulated cluster, prints the trade-off table and
lets PRESTO recommend a strategy -- reproducing the paper's headline
result that materialising the ``resized`` representation beats both
extremes by a wide margin.

Run:  python examples/quickstart.py
"""

from repro import (RunConfig, SimulatedBackend, StrategyAnalysis,
                   StrategyProfiler, get_pipeline)
from repro.core.report import tradeoff_table


def main() -> None:
    pipeline = get_pipeline("CV")
    print(f"pipeline: {pipeline}")
    print(f"dataset:  {pipeline.sample_count:,} samples, "
          f"{pipeline.source.total_bytes(pipeline.sample_count) / 1e9:.1f} GB\n")

    profiler = StrategyProfiler(SimulatedBackend())
    profiles = profiler.profile_pipeline(pipeline, config=RunConfig())

    print("Table 1 style trade-offs:")
    print(tradeoff_table(profiles).to_markdown())
    print()

    analysis = StrategyAnalysis(profiles)
    print(analysis.summary())


if __name__ == "__main__":
    main()
