"""Run a REAL audio pipeline end to end (no simulation).

The in-process backend synthesises speech-like waveforms, encodes them
with the lossless FLAC-style codec, materialises record shards on the
local disk, and executes the actual NumPy STFT + mel-filterbank chain on
worker threads through the tf.data-style runtime.  All numbers below are
real wall-clock measurements on your machine at miniature scale.

Run:  python examples/inprocess_audio.py
"""

from repro import InProcessBackend, RunConfig, get_pipeline
from repro.units import fmt_bytes, fmt_duration


def main() -> None:
    pipeline = get_pipeline("FLAC")
    print(f"pipeline: {pipeline}\n")

    with InProcessBackend(sample_count=64, seed=42) as backend:
        print(f"{'strategy':<22s} {'offline':>10s} {'storage':>10s} "
              f"{'epoch0 SPS':>11s} {'epoch1 SPS':>11s}")
        print("-" * 70)
        for plan in pipeline.split_points():
            result = backend.run(plan, RunConfig(
                threads=4, epochs=2, cache_mode="application"))
            offline = (fmt_duration(result.offline.duration)
                       if result.offline else "-")
            print(f"{plan.strategy_name:<22s} {offline:>10s} "
                  f"{fmt_bytes(result.storage_bytes):>10s} "
                  f"{result.epochs[0].throughput:>11.0f} "
                  f"{result.epochs[1].throughput:>11.0f}")

    print("\nNote how materialising the spectrogram removes the expensive "
          "online STFT,\nand the application cache lifts the second epoch "
          "further -- the same shapes\nthe simulator reproduces at "
          "29,000-sample Librispeech scale.")


if __name__ == "__main__":
    main()
