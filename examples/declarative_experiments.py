"""The declarative Experiment API end to end.

Express studies as data (ExperimentSpec), inspect them before paying
for them (Session.plan), run them through one facade (Session.run) and
compose results from *different workloads* into one comparison frame.

Run with:  PYTHONPATH=src python examples/declarative_experiments.py
"""

from pathlib import Path

from repro.api import (ExperimentSpec, RunSpec, ServeSpec, Session,
                       comparison_frame, dump_spec, load_spec)

session = Session(stderr=None)

# -- 1. a spec is just data --------------------------------------------------

profile = ExperimentSpec(kind="profile", pipelines=("MP3",),
                         name="mp3-baseline")
print("## plan (nothing executed yet)")
print(session.plan(profile).describe())

# -- 2. plan -> run -> artifact ----------------------------------------------

artifact = session.run(profile)
print()
print("## report (byte-identical to `presto profile MP3`)")
print(artifact.report)
print()
print("provenance:", artifact.provenance.describe())
print(f"kernel events: {artifact.events_processed:,}")

# -- 3. specs round-trip through files ---------------------------------------

path = Path("/tmp/mp3_baseline.json")
dump_spec(profile, path)
assert load_spec(path) == profile
assert load_spec(path).fingerprint() == artifact.fingerprint
print(f"\nspec saved to {path} and reloaded: fingerprints match")

# -- 4. different workloads compose into one frame ---------------------------

serve = session.run(ExperimentSpec(
    kind="serve", name="mp3-flac-service", seed=0,
    run=RunSpec(epochs=1),
    serve=ServeSpec(tenants=3, trace="steady", policy="cache-aware")))

combined = comparison_frame([artifact, serve])
print()
print("## one comparison frame across a profile and a serve run")
print(combined.select(["experiment", "workload", "fingerprint",
                       "strategy", "throughput_sps", "tenant",
                       "sps"]).to_markdown())
