"""Where is the NLP training bottleneck?  (paper Sec. 4.1, Fig. 6d)

Walks the GPT-2-style OpenWebText pipeline strategy by strategy, asking
the analytic model which resource binds, then verifies with simulated
runs.  Reproduces the paper's 13x-class insight: the fully-preprocessed
``embedded`` strategy loses to ``bpe-encoded`` because the embedding
step inflates storage 64x -- reading beats recomputing only until the
data gets too fat.

Run:  python examples/nlp_bottleneck_hunt.py
"""

from repro import AnalyticModel, RunConfig, SimulatedBackend, get_pipeline
from repro.units import fmt_bytes, fmt_sps


def main() -> None:
    pipeline = get_pipeline("NLP")
    model = AnalyticModel()
    backend = SimulatedBackend()
    config = RunConfig()

    print("strategy          bottleneck        est.        measured   storage")
    print("-" * 76)
    for plan in pipeline.split_points():
        estimate = model.estimate(plan, config)
        result = backend.run(plan, config)
        print(f"{plan.strategy_name:<17s} {estimate.bottleneck:<17s} "
              f"{fmt_sps(estimate.throughput):>10s}  "
              f"{fmt_sps(result.throughput):>10s}  "
              f"{fmt_bytes(result.storage_bytes):>9s}")

    bpe = backend.run(pipeline.split_at("bpe-encoded"), config)
    embedded = backend.run(pipeline.split_at("embedded"), config)
    print(f"\nbpe-encoded vs fully-preprocessed: "
          f"{bpe.throughput / embedded.throughput:.1f}x faster while "
          f"storing {embedded.storage_bytes / bpe.storage_bytes:,.0f}x less"
          f" ({fmt_bytes(bpe.storage_bytes)} vs "
          f"{fmt_bytes(embedded.storage_bytes)})")


if __name__ == "__main__":
    main()
