"""Beyond the paper: dollars, deadlines and growing datasets.

Three extensions the paper sketches in its discussion sections, built on
the same profiles:

1. **Cloud cost** (Sec. 3.1): price each CV strategy for a 10-epoch
   training project -- stalled GPUs turn "free" unprocessed pipelines
   into the most expensive option.
2. **Amortisation** (Sec. 2): how many epochs until offline
   preprocessing pays for itself.
3. **Dataset growth** (Sec. 7): at what growth factor each CV2-JPG
   representation stops fitting in RAM and caching dies.

Run:  python examples/economics_and_growth.py
"""

from repro import (Environment, RunConfig, SimulatedBackend,
                   StrategyProfiler, get_pipeline)
from repro.core.amortization import amortization_frame, break_even_epochs
from repro.core.economics import PriceSheet, cost_frame
from repro.core.growth import find_threshold_crossings


def main() -> None:
    profiler = StrategyProfiler(SimulatedBackend())

    print("1) Cloud cost of the CV strategies "
          "(10 epochs on a V100, 1 month of storage):")
    cv_profiles = profiler.profile_pipeline(get_pipeline("CV"))
    print(cost_frame(cv_profiles, PriceSheet(), epochs=10).to_markdown())

    print("\n2) When does offline preprocessing amortise? (CV2-JPG)")
    cv2_profiles = profiler.profile_pipeline(get_pipeline("CV2-JPG"))
    by_name = {p.strategy.split_name: p for p in cv2_profiles}
    epochs = break_even_epochs(by_name["unprocessed"], by_name["resized"])
    print(f"   resized beats unprocessed end-to-end after {epochs} "
          "epoch(s)")
    print(amortization_frame(cv2_profiles,
                             horizons=(1, 5, 100)).to_markdown())

    print("\n3) Dataset growth: when does caching die? (CV2-JPG, 80 GB RAM)")
    print(find_threshold_crossings(get_pipeline("CV2-JPG"),
                                   Environment()).to_markdown())
    print("\nA representation whose ram_crossing_factor is small will "
          "lose its cached-epoch\nadvantage first as the dataset grows -- "
          "re-profile before that happens.")


if __name__ == "__main__":
    main()
