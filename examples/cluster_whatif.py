"""What-if analysis: how does storage hardware move the bottleneck?

Profiles the CV pipeline's strategies across four storage backends
(Ceph-HDD, Ceph-SSD, local NVMe, RAM disk) and a thread sweep,
reproducing the paper's Table 4 HDD-vs-SSD finding and extending it:
faster storage only helps strategies whose bottleneck was storage.

Run:  python examples/cluster_whatif.py
"""

from repro import Environment, RunConfig, SimulatedBackend, get_pipeline
from repro.core.frame import Frame
from repro.sim.storage import DEVICE_PROFILES


def main() -> None:
    pipeline = get_pipeline("CV")
    rows = []
    for device_name in ("ceph-hdd", "ceph-ssd", "nvme-local", "memory"):
        backend = SimulatedBackend(
            Environment(storage=DEVICE_PROFILES[device_name]))
        record = {"storage": device_name}
        for plan in pipeline.split_points():
            result = backend.run(plan, RunConfig())
            record[plan.strategy_name] = round(result.throughput)
        rows.append(record)
    frame = Frame.from_records(rows)
    print("CV throughput (SPS) by storage backend and strategy:")
    print(frame.to_markdown())

    print("\nthread sweep on Ceph-HDD, resized strategy:")
    backend = SimulatedBackend()
    plan = pipeline.split_at("resized")
    sweep = Frame.from_records([
        {"threads": threads,
         "throughput_sps": round(
             backend.run(plan, RunConfig(threads=threads)).throughput)}
        for threads in (1, 2, 4, 8, 16)
    ])
    print(sweep.to_markdown())

    print("\nTakeaways: SSD rescues only the random-access-bound "
          "'unprocessed' strategy;\nonce the pipeline is CPU- or "
          "dispatch-bound, faster storage buys nothing --\nexactly the "
          "paper's 'where is my bottleneck' lesson.")


if __name__ == "__main__":
    main()
