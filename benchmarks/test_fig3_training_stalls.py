"""Figure 3: ResNet-50 ingestion vs preprocessing strategy throughput.

The paper overlays the Table 1 strategy throughputs (107/576/1789 SPS)
on per-device ResNet-50 rates and observes that the tuned strategy
removes stalls on the A10, A30 and V100 but not on faster accelerators.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.training import devices_unblocked_by, stall_analysis
from repro.pipelines import get_pipeline


def test_fig3(benchmark, backend):
    pipeline = get_pipeline("CV")

    def experiment():
        throughputs = {}
        for strategy, label in (("unprocessed", "every iteration"),
                                ("pixel-centered", "all steps once"),
                                ("resized", "until resize, once")):
            result = backend.run(pipeline.split_at(strategy), RunConfig())
            throughputs[label] = result.throughput
        return throughputs, stall_analysis(throughputs)

    throughputs, frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 3: training stalls per device/strategy", frame)

    # The tuned strategy unblocks exactly the three slower accelerators.
    unblocked = devices_unblocked_by(throughputs["until resize, once"])
    assert set(unblocked) == {"A10", "A30", "V100"}
    assert devices_unblocked_by(throughputs["all steps once"]) == []
    assert devices_unblocked_by(throughputs["every iteration"]) == []
    # A100-class hardware still stalls even on the tuned strategy.
    a100 = [row for row in frame.rows()
            if row["device"] == "A100"
            and row["strategy"] == "until resize, once"]
    assert a100[0]["stalled"]
