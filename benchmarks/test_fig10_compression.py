"""Figure 10: compression effects on storage, throughput and times.

Paper: GZIP/ZLIB lift CV-family pixel-centered throughput 1.6-2.4x
(73-93% space saving, no CPU wall); NLP never gains; NILM/MP3/FLAC slow
down (0.3-41% savings).  Offline time can inflate up to 13.5x.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines import get_pipeline
from repro.units import space_saving

#: Paper Fig. 10 space savings per (pipeline, strategy) under GZIP.
PAPER_SAVINGS = {
    ("CV", "pixel-centered"): 0.727,
    ("CV2-JPG", "decoded"): 0.41,
    ("CV2-PNG", "decoded"): 0.83,
    ("NLP", "concatenated"): 0.79,
    ("NLP", "embedded"): 0.28,
    ("NILM", "aggregated"): 0.065,
    ("MP3", "spectrogram-encoded"): 0.14,
    ("FLAC", "spectrogram-encoded"): 0.095,
}

PIPELINES = ("CV", "CV2-JPG", "CV2-PNG", "NLP", "NILM", "MP3", "FLAC")


def test_fig10(benchmark, backend):
    def experiment():
        rows = []
        for name in PIPELINES:
            pipeline = get_pipeline(name)
            for plan in pipeline.split_points():
                if plan.is_unprocessed:
                    continue  # the paper omits unprocessed (Sec. 4.3)
                baseline = backend.run(plan, RunConfig())
                for codec in ("GZIP", "ZLIB"):
                    result = backend.run(plan, RunConfig(compression=codec))
                    rows.append({
                        "pipeline": name,
                        "strategy": plan.strategy_name,
                        "codec": codec,
                        "space_saving": round(space_saving(
                            baseline.storage_bytes,
                            result.storage_bytes), 3),
                        "throughput_gain": round(
                            result.throughput / baseline.throughput, 2),
                        "offline_inflation": round(
                            result.offline.duration
                            / baseline.offline.duration, 2),
                    })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 10: compression effects", frame)

    gzip_rows = {(row["pipeline"], row["strategy"]): row
                 for row in frame.rows() if row["codec"] == "GZIP"}
    # Space savings match the paper's measurements.
    for key, paper_saving in PAPER_SAVINGS.items():
        measured = gzip_rows[key]["space_saving"]
        assert abs(measured - paper_saving) < 0.05, (key, measured)
    # CV-family pixel-centered gains 1.3-3x.
    for name in ("CV", "CV2-JPG", "CV2-PNG"):
        gain = gzip_rows[(name, "pixel-centered")]["throughput_gain"]
        assert 1.2 < gain < 3.0, name
    # Obs 1: high savings do not guarantee gains -- NLP never improves.
    for strategy in ("concatenated", "decoded", "bpe-encoded", "embedded"):
        assert gzip_rows[("NLP", strategy)]["throughput_gain"] <= 1.1
    # NILM/MP3/FLAC last strategies slow down.
    for name in ("NILM", "MP3", "FLAC"):
        last = get_pipeline(name).strategy_names()[-1]
        assert gzip_rows[(name, last)]["throughput_gain"] <= 1.0
    # Obs 2: offline inflation is volatile (spans > 3x across cells).
    inflations = [row["offline_inflation"] for row in frame.rows()]
    assert max(inflations) / min(inflations) > 3.0
    # CV2-PNG: compressing the bulky early representations (concatenated
    # 87 GB, decoded 66 GB) inflates offline time far more than the small
    # late ones (paper: 9.6x/13.5x vs 1.08-1.1x; our shared-constant
    # model reproduces the ordering at 2.6x/1.6x vs ~1.1x).
    for bulky in ("concatenated", "decoded"):
        for small in ("resized", "pixel-centered"):
            assert (gzip_rows[("CV2-PNG", bulky)]["offline_inflation"]
                    > gzip_rows[("CV2-PNG", small)]["offline_inflation"])
