"""Figure 14: inserting a greyscale step before vs after pixel-center.

Paper: placing greyscale before pixel-centering raises the pipeline's
peak throughput 2.8x (resized 1513 -> applied-greyscale 4284 SPS)
because every downstream representation shrinks 3x; placing it after
still lifts the final strategy from 534 to 1384 SPS.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines import get_pipeline


def test_fig14(benchmark, backend):
    def experiment():
        rows = []
        for variant in ("CV", "CV+greyscale-before", "CV+greyscale-after"):
            pipeline = get_pipeline(variant)
            for plan in pipeline.split_points():
                result = backend.run(plan, RunConfig())
                rows.append({
                    "variant": variant,
                    "strategy": plan.strategy_name,
                    "sps": round(result.throughput, 1),
                    "storage_gb": round(result.storage_bytes / 1e9, 1),
                })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 14: greyscale insertion", frame)

    def cell(variant, strategy):
        return [row for row in frame.rows()
                if row["variant"] == variant
                and row["strategy"] == strategy][0]

    base_peak = cell("CV", "resized")["sps"]
    before_peak = cell("CV+greyscale-before", "applied-greyscale")["sps"]
    # Paper: 2.8x peak improvement from greyscale-before.
    assert 1.8 < before_peak / base_peak < 4.0
    # Greyscale-before shrinks the materialised representation 3x.
    assert cell("CV+greyscale-before", "applied-greyscale")[
        "storage_gb"] < 0.4 * cell("CV", "resized")["storage_gb"]
    # Fig. 14b: the post-centering greyscale strategy still beats
    # materialising pixel-centered (534 -> 1384 in the paper).
    after_grey = cell("CV+greyscale-after", "applied-greyscale")["sps"]
    after_pixel = cell("CV+greyscale-after", "pixel-centered")["sps"]
    assert after_grey > 2.0 * after_pixel
    # Storage shape: pixel-centered drops from 1.39 TB to 463 GB when
    # greyscale precedes it.
    assert cell("CV+greyscale-before", "pixel-centered")[
        "storage_gb"] < 0.4 * cell("CV", "pixel-centered")["storage_gb"]
