"""Table 3: fio profile of the storage cluster.

Paper values for Ceph-HDD: sequential 219 / 910 MB/s (1 / 8 threads),
random over 5000 x 0.2 MB files 6.6 / 40.4 MB/s, IOPS 53.4k / 222k /
1629 / 9853.
"""

import pytest
from conftest import emit, run_once

from repro.core.frame import Frame
from repro.sim.fio import TABLE3_WORKLOADS, run_fio
from repro.sim.storage import HDD_CEPH
from repro.units import MB

PAPER_BW_MB = (219.0, 910.0, 6.6, 40.4)
PAPER_IOPS = (53_400, 222_000, 1_629, 9_853)


def test_table3(benchmark):
    def experiment():
        results = run_fio(HDD_CEPH)
        rows = []
        for result, paper_bw, paper_iops in zip(results, PAPER_BW_MB,
                                                PAPER_IOPS):
            workload = result.workload
            rows.append({
                "Threads": workload.threads,
                "Files per Thread": workload.files_per_thread,
                "Bandwidth (paper MB/s)": paper_bw,
                "Bandwidth (measured MB/s)": round(result.bandwidth / MB, 1),
                "IOPS (paper)": paper_iops,
                "IOPS (measured)": round(result.iops),
            })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Table 3: fio profile of the storage cluster", frame)

    for row in frame.rows():
        assert row["Bandwidth (measured MB/s)"] == pytest.approx(
            row["Bandwidth (paper MB/s)"], rel=0.12)
