"""Table 2: metadata of all profiled datasets.

Regenerated from the catalog and cross-checked against the synthetic
generators (each pipeline's payloads must decode with its codec).
"""

from conftest import emit, run_once

from repro.datasets.catalog import CATALOG, table2_frame
from repro.datasets.synthetic import SyntheticSource


def test_table2(benchmark):
    def experiment():
        frame = table2_frame()
        # Validate generators produce decodable payloads per pipeline.
        for pipeline in CATALOG:
            payload = next(SyntheticSource(pipeline, 1, seed=0).generate())
            assert len(payload) > 0
        return frame

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Table 2: dataset metadata", frame)

    assert len(frame) == 7
    sizes = dict(zip(frame["Pipeline"], frame["Size in GB"]))
    assert round(sizes["CV"], 1) == 146.9
    assert round(sizes["NILM"], 2) == 39.56
    assert round(sizes["MP3"], 2) == 0.25
