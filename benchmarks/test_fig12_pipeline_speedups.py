"""Figure 12: per-pipeline thread speedups, cold vs system-cached.

Paper setup: 8000-sample subsets, 1/2/4/8 threads, two epochs with the
page cache kept warm.  Key shapes: native CV-family strategies scale
4-8x; GIL-bound steps (NLP decode/bpe, NILM decode/aggregate) scale ~1x
or *below* 1; random-access-bound strategies (MP3 unprocessed) scale
poorly cold but well once cached (Sec. 4.4 obs. 3).
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines import get_pipeline

SUBSET = 8_000
CASES = [
    ("CV", "concatenated"),
    ("CV", "resized"),
    ("CV2-JPG", "decoded"),
    ("NLP", "decoded"),
    ("NLP", "bpe-encoded"),
    ("NILM", "decoded"),
    ("NILM", "aggregated"),
    ("MP3", "unprocessed"),
    ("FLAC", "unprocessed"),
]


def test_fig12(benchmark, backend):
    def experiment():
        rows = []
        for name, strategy in CASES:
            pipeline = get_pipeline(name).with_sample_count(SUBSET)
            plan = pipeline.split_at(strategy)
            record = {"pipeline": name, "strategy": strategy}
            for cache, label in (("none", "cold"), ("system", "cached")):
                durations = {}
                for threads in (1, 8):
                    result = backend.run(plan, RunConfig(
                        threads=threads, epochs=2, cache_mode=cache))
                    epoch = result.epochs[1 if cache == "system" else 0]
                    durations[threads] = epoch.duration
                record[f"speedup_{label}"] = round(
                    durations[1] / durations[8], 2)
            rows.append(record)
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 12: pipeline speedups at 8000 samples", frame)

    speedups = {(row["pipeline"], row["strategy"]):
                (row["speedup_cold"], row["speedup_cached"])
                for row in frame.rows()}
    # Native CV strategies scale well.
    assert speedups[("CV", "concatenated")][0] > 3.5
    # Purely GIL-bound strategies do not scale; NLP decoded mixes a GIL
    # bpe step with a native embed step and lands in between.
    assert speedups[("NLP", "decoded")][0] < 3.0
    assert speedups[("NILM", "decoded")][0] < 1.5
    assert speedups[("NILM", "aggregated")][1] < 2.5
    # Obs 3: caching reveals that audio decode scales -- the cold
    # speedup is limited by random file access, the cached one is not.
    mp3_cold, mp3_cached = speedups[("MP3", "unprocessed")]
    assert mp3_cached > mp3_cold
    flac_cold, flac_cached = speedups[("FLAC", "unprocessed")]
    assert flac_cached >= flac_cold
