"""Figure 11: multi-threaded read scalability vs sample size.

Paper: reading the synthetic 15 GB dataset with 8 threads achieves a
healthy speedup at 20.5 MB samples but ~1x at 0.01 MB -- the serialized
per-sample hand-off (context-switch convoy) absorbs all parallelism for
tiny samples.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines.synthetic import build_read_sweep_pipeline

THREADS = (1, 2, 4, 8)
SIZES = (20.5, 5.1, 1.3, 0.32, 0.08, 0.02, 0.01)


def test_fig11(benchmark, backend):
    def experiment():
        rows = []
        for sample_mb in SIZES:
            pipeline = build_read_sweep_pipeline(sample_mb, "float32")
            plan = pipeline.split_points()[0]
            durations = {}
            for threads in THREADS:
                result = backend.run(plan, RunConfig(threads=threads))
                durations[threads] = result.epochs[0].duration
            record = {"sample_mb": sample_mb}
            for threads in THREADS:
                record[f"speedup_x{threads}"] = round(
                    durations[1] / durations[threads], 2)
            rows.append(record)
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 11: thread scalability vs sample size", frame)

    rows = {row["sample_mb"]: row for row in frame.rows()}
    # Large samples: solid 8-thread speedup (paper: ~6-7x).
    assert rows[20.5]["speedup_x8"] > 4.0
    # Tiny samples: parallelism evaporates (paper ~1x; our per-thread
    # model keeps a residual ~2x because it does not overlap the
    # single-thread baseline's I/O with dispatch -- see EXPERIMENTS.md).
    assert rows[0.01]["speedup_x8"] < 2.2
    # Speedup stays healthy down to ~0.08 MB, then collapses (the
    # paper's knee): every sub-0.08 MB point scales worse than every
    # larger point.
    healthy = [rows[size]["speedup_x8"] for size in SIZES if size >= 0.08]
    collapsed = [rows[size]["speedup_x8"] for size in SIZES if size < 0.08]
    assert min(healthy) > max(collapsed)
    # More threads never hurt for large samples.
    big = rows[20.5]
    assert (big["speedup_x1"] <= big["speedup_x2"]
            <= big["speedup_x4"] <= big["speedup_x8"])
