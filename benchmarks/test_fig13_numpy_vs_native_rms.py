"""Figure 13: NumPy vs framework-native RMS across sample sizes.

Paper: the NumPy implementation holds the GIL and shows speedup <= 1
across all sample sizes; the framework-native version scales 4-8x with
8 threads -- yet single-threaded NumPy is still 2.9x faster than
8-thread native (650 s vs 1905 s at 20.5 MB).  Lesson: efficient
implementations can beat scalable ones.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines.synthetic import build_rms_sweep_pipeline

SIZES = (20.5, 5.1, 1.3, 0.32, 0.08)


def test_fig13(benchmark, backend):
    def experiment():
        rows = []
        for sample_mb in SIZES:
            record = {"sample_mb": sample_mb}
            for impl in ("numpy", "native"):
                pipeline = build_rms_sweep_pipeline(sample_mb, impl)
                plan = pipeline.split_points()[0]
                durations = {}
                for threads in (1, 8):
                    result = backend.run(plan, RunConfig(threads=threads))
                    durations[threads] = result.epochs[0].duration
                record[f"{impl}_1t_s"] = round(durations[1], 1)
                record[f"{impl}_8t_s"] = round(durations[8], 1)
                record[f"{impl}_speedup"] = round(
                    durations[1] / durations[8], 2)
            rows.append(record)
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 13: NumPy vs native RMS scaling", frame)

    for row in frame.rows():
        # NumPy (GIL-bound) never scales.
        assert row["numpy_speedup"] < 1.3, row
        # Native scales substantially for non-tiny samples.
        if row["sample_mb"] >= 0.32:
            assert row["native_speedup"] > 3.0, row
    # The paper's punchline at 20.5 MB: single-threaded NumPy beats
    # 8-threaded native by ~3x.
    big = [row for row in frame.rows() if row["sample_mb"] == 20.5][0]
    ratio = big["native_8t_s"] / big["numpy_1t_s"]
    assert 1.8 < ratio < 4.5
