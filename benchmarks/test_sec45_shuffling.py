"""Section 4.5: shuffling cost linearity and buffer placement.

Paper: per-sample shuffle cost is constant across sample sizes (so
shuffling is orthogonal to strategy choice); the buffer should sit
after the online step with the smallest output so a fixed-byte buffer
holds the most samples (highest entropy).
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core import shuffling
from repro.core.frame import Frame
from repro.pipelines import get_pipeline
from repro.units import GB


def test_sec45(benchmark, backend):
    def experiment():
        # Part 1: per-sample shuffle overhead across sample counts.
        counts = [1_000, 10_000, 100_000, 1_000_000]
        cost_frame = shuffling.shuffle_cost_frame(counts)

        # Part 2: measured throughput cost of shuffling on a real
        # strategy (MP3 spectrogram-encoded).
        plan = get_pipeline("MP3").split_points()[-1]
        plain = backend.run(plan, RunConfig())
        shuffled = backend.run(plan, RunConfig(shuffle_buffer=10_000))

        # Part 3: placement advice across pipelines with a 1 GB buffer.
        placements = []
        for name in ("CV", "NLP", "NILM"):
            pipeline = get_pipeline(name)
            placement = shuffling.recommend_shuffle_position(
                pipeline.split_points()[-1], buffer_bytes=1 * GB)
            placements.append({
                "pipeline": name,
                "shuffle_after": placement.after_step,
                "buffer_samples": placement.buffer_samples,
                "entropy_bits": round(placement.entropy_bits, 1),
            })
        return (cost_frame, plain.throughput, shuffled.throughput,
                Frame.from_records(placements))

    cost_frame, plain_sps, shuffled_sps, placement_frame = run_once(
        benchmark, experiment)
    emit(benchmark, "Sec 4.5: shuffle cost vs sample count", cost_frame)
    emit(benchmark, "Sec 4.5: shuffle placement advice", placement_frame)
    print(f"MP3 last strategy: {plain_sps:.0f} SPS plain vs "
          f"{shuffled_sps:.0f} SPS shuffled")

    # Per-sample cost decreases toward the constant term (amortisation).
    per_sample = cost_frame["per_sample_us"]
    assert per_sample == sorted(per_sample, reverse=True)
    assert per_sample[-1] < 1.2 * 9.6  # approaches 9.6 us
    # Shuffling costs a little throughput, never an order of magnitude.
    assert 0.8 < shuffled_sps / plain_sps < 1.0
    # Placement advice: smaller representations give higher entropy.
    rows = {row["pipeline"]: row for row in placement_frame.rows()}
    assert rows["NILM"]["entropy_bits"] > rows["CV"]["entropy_bits"]
