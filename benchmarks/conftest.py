"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper on the
simulated backend, prints the paper-vs-measured rows, stores them in
``benchmark.extra_info`` and asserts the *shape* facts (who wins, by
roughly what factor) that the paper's narrative rests on.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.backends import RunConfig, SimulatedBackend
from repro.core.profiler import StrategyProfiler


@pytest.fixture(scope="session")
def backend():
    return SimulatedBackend()


@pytest.fixture(scope="session")
def profiler(backend):
    return StrategyProfiler(backend)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing.

    Simulation runs are deterministic, so repeated rounds only waste
    wall-clock; pedantic mode keeps the harness honest about cost.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(benchmark, title: str, frame) -> None:
    """Print a result table and attach it to the benchmark record."""
    print(f"\n=== {title} ===")
    print(frame.to_markdown())
    benchmark.extra_info[title] = frame.to_csv()
