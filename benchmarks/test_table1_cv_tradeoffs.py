"""Table 1: trade-offs for the CV pipeline at three strategies.

Paper values (throughput SPS / storage GB):
    all steps at every iteration   107 / 146
    all steps once                 576 / 1535 (materialised 1.39 TB)
    until resize step, once       1789 / 494  (materialised 347 GB)
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines import get_pipeline

PAPER = {
    "all steps at every iteration": ("unprocessed", 107),
    "all steps once": ("pixel-centered", 576),
    "until resize step, once": ("resized", 1789),
}


def test_table1(benchmark, backend):
    pipeline = get_pipeline("CV")

    def experiment():
        rows = []
        for label, (strategy, paper_sps) in PAPER.items():
            result = backend.run(pipeline.split_at(strategy), RunConfig())
            rows.append({
                "Preprocessing strategy": label,
                "Throughput (paper)": paper_sps,
                "Throughput (measured)": round(result.throughput),
                "Storage GB (measured)": round(result.storage_bytes / 1e9),
            })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Table 1: CV preprocessing trade-offs", frame)

    measured = {row["Preprocessing strategy"]: row["Throughput (measured)"]
                for row in frame.rows()}
    # Shape: resized wins by ~3x over full preprocessing; full
    # preprocessing beats fully-online by ~5x.
    assert (measured["until resize step, once"]
            > 2 * measured["all steps once"])
    assert (measured["all steps once"]
            > 3 * measured["all steps at every iteration"])
    # Every cell within 2x of the paper's absolute value.
    for label, (_, paper_sps) in PAPER.items():
        assert 0.5 < measured[label] / paper_sps < 2.0
