"""Figure 7: online processing time vs sample size (15 GB synthetic).

Paper: reading+deserializing 15 GB takes <2x as long at 20.5 MB samples
as at 5.1 MB, but 11x longer at 0.01 MB; uint8 and float32 behave
identically.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines.synthetic import (build_read_sweep_pipeline,
                                       sweep_sample_sizes)

#: Paper Fig. 7 total online processing times (seconds, eyeballed from
#: the figure; the sweep end points are quoted in the text).
PAPER_SHAPE = {20.5: 15.0, 0.08: 33.0, 0.01: 173.5}


def test_fig7(benchmark, backend):
    def experiment():
        rows = []
        for dtype in ("uint8", "float32"):
            for sample_mb in sweep_sample_sizes():
                pipeline = build_read_sweep_pipeline(sample_mb, dtype)
                plan = pipeline.split_points()[0]
                result = backend.run(plan, RunConfig())
                rows.append({
                    "sample_mb": sample_mb,
                    "dtype": dtype,
                    "total_seconds": round(
                        result.epochs[0].duration, 2),
                })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 7: sample-size sweep (uint8 vs float32)", frame)

    by_key = {(row["sample_mb"], row["dtype"]): row["total_seconds"]
              for row in frame.rows()}
    # dtype does not matter (paper's explicit observation).
    for sample_mb in sweep_sample_sizes():
        assert by_key[(sample_mb, "uint8")] == by_key[(sample_mb, "float32")]
    # Processing time grows as samples shrink (1% slack for job-
    # partitioning rounding at the large end).
    times = [by_key[(mb, "float32")] for mb in sweep_sample_sizes()]
    assert all(later >= earlier * 0.99
               for earlier, later in zip(times, times[1:]))
    # The 0.01 MB point is ~11x the 20.5 MB point (paper: "more than 11x").
    ratio = by_key[(0.01, "float32")] / by_key[(20.5, "float32")]
    assert 6.0 < ratio < 16.0
