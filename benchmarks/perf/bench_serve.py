#!/usr/bin/env python
"""Kernel performance suite (``make bench`` / ``make bench-check``).

Runs the pinned scenarios from :mod:`scenarios` and writes
``BENCH_serve.json``:

* **sweep**       -- MP3+FLAC strategy sweep (profiling hot path);
* **serve**       -- the scaled serve scenarios (8/64/128 tenants and
                     the storage-thrashing hot-raw variant);
* **stream**      -- the streaming-inference scenarios (per-request
                     latency SLOs, bounded queues);
* **ctl**         -- the control-plane chaos scenario (long-horizon
                     operations trace under the seeded fault timeline);
* **link10k**     -- the pure-kernel 10k-transfer link microbenchmark;
* **kernel_comparison** -- wall seconds and events/sec of the pre-PR
                     O(n)-rescan kernel vs this checkout, as measured on
                     the machine that recorded the snapshot.

Wall seconds are machine-dependent -- track the trend, not the absolute.
The simulated metrics and the *event counts* are deterministic: they
must only change when the model changes.  ``--check`` replays just the
pinned 64-tenant scenario and asserts its event count and makespan
against ``baseline.json``; CI runs that instead of wall-clock
assertions, which would flake.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py [--output F]
    PYTHONPATH=src python benchmarks/perf/bench_serve.py --check
    PYTHONPATH=src python benchmarks/perf/bench_serve.py --update-baseline
    PYTHONPATH=src python benchmarks/perf/bench_serve.py --full   # + registry sweep
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import scenarios  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

#: Pre-PR kernel numbers (commit a3db386, the O(n)-rescan link and the
#: allocation-heavy event loop), measured on the same host that recorded
#: the committed BENCH_serve.json.  Events/sec uses the events *scheduled*
#: by the old kernel, which had no processed-events counter.
PRE_PR = {
    "commit": "a3db386",
    "serve64": {"wall_seconds": 9.62, "events": 2143904},
    "serve64_hot_raw": {"wall_seconds": 21.63, "events": 3914950},
    "serve128": {"wall_seconds": 19.54, "events": 4057468},
    "link10k": {"wall_seconds": 0.598, "events": 22912},
}


def _comparison(post: dict) -> dict:
    """Pre-PR vs this-run wall/event-rate table."""
    table = {"pre_pr_commit": PRE_PR["commit"],
             "note": ("pre-PR numbers measured on the host that recorded "
                      "this snapshot; compare trends, not absolutes")}
    for name, before in PRE_PR.items():
        if name == "commit" or name not in post:
            continue
        after = post[name]
        table[name] = {
            "pre_pr_wall_seconds": before["wall_seconds"],
            "wall_seconds": after["wall_seconds"],
            "speedup": round(before["wall_seconds"]
                             / max(after["wall_seconds"], 1e-9), 2),
            "pre_pr_events_per_sec": int(before["events"]
                                         / before["wall_seconds"]),
            "events_per_sec": after["events_per_sec"],
        }
    return table


def run_suite(full: bool = False) -> dict:
    serve = {name: scenarios.run_serve_scenario(name)
             for name in scenarios.SERVE_SCENARIOS}
    stream = {name: scenarios.run_stream_scenario(name)
              for name in scenarios.STREAM_SCENARIOS}
    ctl = {name: scenarios.run_ctl_scenario(name)
           for name in scenarios.CTL_SCENARIOS}
    link = scenarios.run_link_microbench()
    snapshot = {
        "schema": 2,
        "python": platform.python_version(),
        "sweep": scenarios.run_sweep(),
        "serve": serve,
        "stream": stream,
        "ctl": ctl,
        "link10k": link,
    }
    if full:
        snapshot["sweep_full"] = scenarios.run_sweep_full()
    # Flatten the single-policy scenarios for the comparison table.
    post = {"link10k": link}
    for name, payload in serve.items():
        policies = payload["policies"]
        if len(policies) == 1:
            post[name] = next(iter(policies.values()))
    snapshot["kernel_comparison"] = _comparison(post)
    return snapshot


def check_against_baseline() -> int:
    """CI perf smoke: replay the pinned scenario, assert event counts.

    Event counts (not wall seconds) keep the check flake-free: the DES
    is deterministic, so a changed count means the model or the kernel's
    event structure changed -- which must be an acknowledged decision
    (``--update-baseline``), never an accident.
    """
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run --update-baseline",
              file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    checked = []
    for name in scenarios.CHECK_SCENARIOS:
        result = scenarios.run_serve_scenario(name)
        for policy, metrics in result["policies"].items():
            expected = baseline["serve"][name][policy]
            for key in ("events", "makespan_s"):
                if metrics[key] != expected[key]:
                    failures.append(
                        f"{name}[{policy}].{key}: expected "
                        f"{expected[key]}, got {metrics[key]}")
            checked.append(f"{name} events={metrics['events']}")
    for name in scenarios.STREAM_CHECK_SCENARIOS:
        metrics = scenarios.run_stream_scenario(name)
        expected = baseline["stream"][name]
        for key in ("events", "makespan_s"):
            if metrics[key] != expected[key]:
                failures.append(f"{name}.{key}: expected "
                                f"{expected[key]}, got {metrics[key]}")
        checked.append(f"{name} events={metrics['events']}")
    for name in scenarios.CTL_CHECK_SCENARIOS:
        metrics = scenarios.run_ctl_scenario(name)
        expected = baseline["ctl"][name]
        for key in ("events", "makespan_s", "fault_windows"):
            if metrics[key] != expected[key]:
                failures.append(f"{name}.{key}: expected "
                                f"{expected[key]}, got {metrics[key]}")
        checked.append(f"{name} events={metrics['events']}")
    link = scenarios.run_link_microbench()
    for key in ("events", "simulated_seconds"):
        if link[key] != baseline["link10k"][key]:
            failures.append(f"link10k.{key}: expected "
                            f"{baseline['link10k'][key]}, got {link[key]}")
    checked.append(f"link10k events={link['events']}")
    if failures:
        print("bench-check FAILED (deterministic cost drifted):")
        for failure in failures:
            print(f"  {failure}")
        print("intentional? refresh with "
              "`python benchmarks/perf/bench_serve.py --update-baseline`")
        return 1
    print("bench-check OK: " + ", ".join(checked))
    return 0


def update_baseline() -> int:
    payload = {"serve": {}, "stream": {}, "ctl": {}, "link10k": {}}
    for name in scenarios.CHECK_SCENARIOS:
        payload["serve"][name] = {
            policy: {"events": metrics["events"],
                     "makespan_s": metrics["makespan_s"]}
            for policy, metrics in
            scenarios.run_serve_scenario(name)["policies"].items()
        }
    for name in scenarios.STREAM_CHECK_SCENARIOS:
        metrics = scenarios.run_stream_scenario(name)
        payload["stream"][name] = {"events": metrics["events"],
                                   "makespan_s": metrics["makespan_s"]}
    payload["ctl"] = {}
    for name in scenarios.CTL_CHECK_SCENARIOS:
        metrics = scenarios.run_ctl_scenario(name)
        payload["ctl"][name] = {
            "events": metrics["events"],
            "makespan_s": metrics["makespan_s"],
            "fault_windows": metrics["fault_windows"],
        }
    link = scenarios.run_link_microbench()
    payload["link10k"] = {"events": link["events"],
                          "simulated_seconds": link["simulated_seconds"]}
    BASELINE_PATH.write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
    print(f"wrote {BASELINE_PATH}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serve.json",
                        help="where to write the snapshot")
    parser.add_argument("--check", action="store_true",
                        help="replay the pinned scenario and assert the "
                             "deterministic event count (CI smoke)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="refresh benchmarks/perf/baseline.json")
    parser.add_argument("--full", action="store_true",
                        help="also run the full-registry sweep (slow)")
    args = parser.parse_args()
    if args.check:
        return check_against_baseline()
    if args.update_baseline:
        return update_baseline()
    snapshot = run_suite(full=args.full)
    path = Path(args.output)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    for name, payload in snapshot["serve"].items():
        for policy, metrics in payload["policies"].items():
            print(f"  serve[{name}/{policy}]: {metrics['wall_seconds']}s "
                  f"wall, {metrics['events']} events "
                  f"({metrics['events_per_sec']}/s)")
    for name, metrics in snapshot["stream"].items():
        print(f"  stream[{name}]: {metrics['wall_seconds']}s wall, "
              f"{metrics['events']} events "
              f"({metrics['events_per_sec']}/s), "
              f"p99 {metrics['p99_latency_s']}s")
    for name, metrics in snapshot["ctl"].items():
        print(f"  ctl[{name}]: {metrics['wall_seconds']}s wall, "
              f"{metrics['events']} events "
              f"({metrics['events_per_sec']}/s), "
              f"{metrics['fault_windows']} fault window(s), "
              f"{metrics['retries']} retries, {metrics['shed']} shed")
    link = snapshot["link10k"]
    print(f"  link10k: {link['wall_seconds']}s wall, "
          f"{link['events']} events ({link['events_per_sec']}/s)")
    for name in ("serve64", "serve64_hot_raw", "serve128", "link10k"):
        comparison = snapshot["kernel_comparison"].get(name)
        if comparison:
            print(f"  {name} speedup vs pre-PR kernel: "
                  f"{comparison['speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
