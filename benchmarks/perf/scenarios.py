"""Pinned performance scenarios for the kernel benchmark suite.

Each scenario is deterministic: the simulated results (makespan, SPS,
events processed) must be identical on every host and every run, while
the wall-clock seconds measure how fast *this* checkout's kernel chews
through the same event stream.  ``make bench`` records all scenarios
into ``BENCH_serve.json``; ``make bench-check`` replays only the pinned
64-tenant scenario and asserts the event count (flake-free CI proxy).

Scenarios
---------
* ``serve64``          -- THE pinned scenario: 64-tenant bursty serve on
                          16 slots under cache-aware scheduling (default
                          pipeline mix).  The kernel-speedup acceptance
                          gate and the CI event-count smoke run this.
* ``serve64_hot_raw``  -- 64 bursty tenants, full co-tenancy (64 slots),
                          hot artifact pinned to the *raw* CV2-PNG
                          dataset whose working set exceeds the page
                          cache: sustained storage-stream concurrency,
                          the regime where the historical O(n) link
                          rescans went quadratic.  Runs under the
                          ``tenant`` tie-break so equal-score ordering
                          is pinned by name, not arrival.
* ``serve128``         -- 128 tenants; scale check above the pinned one.
* ``stream64``         -- 64 bursty tenant request streams through the
                          streaming inference engine (bounded queues,
                          per-request deadlines): the latency-path
                          analogue of ``serve64``, pinned by event count
                          in the CI bench-check set.
* ``ctl_ops_chaos32``  -- long-horizon operations trace (3 simulated
                          days, 32 tenants) through the control plane
                          with the full chaos timeline injected
                          (straggler + device slowdown + brownout +
                          blackout + crash window, checkpoint-aware
                          resume, SLO-aware shedding).  Pins the fault
                          engine's deterministic cost in the CI
                          bench-check set.
* ``link10k``          -- kernel microbenchmark: 10,000 transfers over
                          one max-min fair link at 512-way concurrency,
                          no model code at all.
* ``sweep``            -- every legal strategy of MP3 + FLAC through the
                          serial sweep engine (profiling hot path).
* ``sweep_full``       -- the whole pipeline registry (slow; excluded
                          from the default ``make bench`` run).
"""

from __future__ import annotations

import time

from repro.units import MB

#: Serve-scenario definitions: trace kwargs + service kwargs.
SERVE_SCENARIOS = {
    "serve8": dict(
        trace=dict(kind="bursty", tenants=8, seed=0),
        policies=("fifo", "cache-aware"), slots=2),
    "serve64": dict(
        trace=dict(kind="bursty", tenants=64, seed=0),
        policies=("cache-aware",), slots=16),
    "serve64_hot_raw": dict(
        trace=dict(kind="bursty", tenants=64, seed=0, burst_size=8,
                   pipelines=("CV2-PNG", "CV2-JPG"),
                   hot_pipeline="CV2-PNG", hot_split="unprocessed"),
        policies=("cache-aware",), slots=64, tie_break="tenant"),
    "serve128": dict(
        trace=dict(kind="bursty", tenants=128, seed=0),
        policies=("cache-aware",), slots=16),
}

#: Scenarios the CI smoke (``make bench-check``) replays.  serve64 is
#: the default-mix bursty scenario; serve64_hot_raw is the pinned
#: kernel-speedup acceptance scenario (sustained storage concurrency).
CHECK_SCENARIOS = ("serve64", "serve64_hot_raw")

#: Streaming-inference scenario definitions (generate_stream kwargs).
STREAM_SCENARIOS = {
    "stream64": dict(tenants=64, seed=0, arrival="burst", rate=2.0,
                     requests=48, batch=32, workers=4, queue_bound=8),
}

#: Stream scenarios the CI smoke replays alongside CHECK_SCENARIOS.
STREAM_CHECK_SCENARIOS = ("stream64",)

#: Control-plane chaos scenarios: trace kwargs + dispatcher kwargs +
#: fault-plan kwargs (generate_fault_plan).  Deterministic like every
#: other scenario -- same seed, same timeline, same event count.
CTL_SCENARIOS = {
    "ctl_ops_chaos32": dict(
        trace=dict(kind="operations", tenants=32, seed=0),
        policy="cache-aware", slots=8,
        faults=dict(seed=3, horizon=20000.0, stragglers=1, slowdowns=1,
                    brownouts=1, blackouts=1, crash_windows=1,
                    severity=0.6),
        checkpoint_epochs=2, shed_slo=True),
}

#: Chaos scenarios the CI smoke replays alongside CHECK_SCENARIOS.
CTL_CHECK_SCENARIOS = ("ctl_ops_chaos32",)

LINK_STREAMS = 512
LINK_TRANSFERS = 10_000


def build_trace(kind: str, **kwargs):
    from repro.serve import generate_trace
    return generate_trace(kind, **kwargs)


def run_serve_scenario(name: str) -> dict:
    """Run one pinned serve scenario; returns the recorded metrics."""
    from repro.serve import PreprocessingService
    spec = SERVE_SCENARIOS[name]
    policies = {}
    for policy in spec["policies"]:
        trace = build_trace(**spec["trace"])
        service = PreprocessingService(policy=policy, slots=spec["slots"],
                                       tie_break=spec.get("tie_break"))
        started = time.perf_counter()
        report = service.run(trace)
        wall = time.perf_counter() - started
        policies[policy] = {
            "wall_seconds": round(wall, 3),
            "events": report.events_processed,
            "events_per_sec": int(report.events_processed / wall),
            "makespan_s": round(report.makespan, 3),
            "aggregate_sps": round(report.aggregate_sps, 3),
            "p99_epoch_s": round(report.p99_epoch_seconds, 3),
            "cache_hit_ratio": round(report.cache_hit_ratio, 4),
            "offline_runs": report.offline_runs,
            "offline_deduped": report.offline_deduped,
            "slo_violations": report.total_slo_violations,
        }
    return {
        "trace": dict(spec["trace"]),
        "slots": spec["slots"],
        "tie_break": spec.get("tie_break"),
        "policies": policies,
    }


def run_stream_scenario(name: str) -> dict:
    """Run one pinned streaming-inference scenario.

    Deterministic like the serve scenarios: the event count and every
    simulated latency metric must be bit-identical across hosts; only
    the wall seconds measure this checkout's kernel speed.
    """
    from repro.stream import StreamingService, generate_stream
    spec = STREAM_SCENARIOS[name]
    kwargs = dict(spec)
    tenants = kwargs.pop("tenants")
    seed = kwargs.pop("seed")
    streams = generate_stream(tenants, seed=seed, **kwargs)
    started = time.perf_counter()
    report = StreamingService().run(streams, seed=seed)
    wall = time.perf_counter() - started
    return {
        "spec": dict(spec),
        "wall_seconds": round(wall, 3),
        "events": report.events_processed,
        "events_per_sec": int(report.events_processed / wall),
        "makespan_s": round(report.makespan, 3),
        "p99_latency_s": round(report.p99_latency, 3),
        "miss_fraction": round(report.miss_fraction, 4),
        "shed": report.total_shed,
        "cache_hit_ratio": round(report.cache_hit_ratio, 4),
    }


def run_ctl_scenario(name: str) -> dict:
    """Run one pinned control-plane chaos scenario.

    The chaos timeline is seeded (``chaos-{seed}`` RNG namespace), so
    the injected windows -- and therefore retries, sheds, lost epochs
    and the kernel event count -- are bit-identical across hosts.
    """
    from repro.ctl import Dispatcher
    from repro.faults import generate_fault_plan
    spec = CTL_SCENARIOS[name]
    trace = build_trace(**spec["trace"])
    plan = generate_fault_plan(**spec["faults"])
    dispatcher = Dispatcher(policy=spec["policy"], slots=spec["slots"],
                            faults=plan,
                            checkpoint_epochs=spec["checkpoint_epochs"],
                            shed_slo=spec["shed_slo"])
    started = time.perf_counter()
    report = dispatcher.run(trace)
    wall = time.perf_counter() - started
    return {
        "trace": dict(spec["trace"]),
        "slots": spec["slots"],
        "wall_seconds": round(wall, 3),
        "events": report.events_processed,
        "events_per_sec": int(report.events_processed / wall),
        "makespan_s": round(report.service.makespan, 3),
        "fault_windows": len(report.service.fault_events),
        "transfers_aborted": report.service.transfers_aborted,
        "retries": report.total_retries,
        "dead_lettered": report.dead,
        "shed": report.total_shed,
        "lost_epochs": report.total_lost_epochs,
    }


def run_link_microbench(streams: int = LINK_STREAMS,
                        transfers: int = LINK_TRANSFERS) -> dict:
    """Pure-kernel link stress: many concurrent max-min fair streams.

    No pipelines, no machine model -- just transfer arrivals and
    completions, so the wall seconds isolate the link hot path the
    virtual-progress rewrite targets.
    """
    from repro.sim.bandwidth import SharedBandwidth
    from repro.sim.events import Simulation, all_of

    sim = Simulation()
    link = SharedBandwidth(sim, aggregate_bw=910 * MB,
                           per_stream_bw=219 * MB, name="bench")
    per_stream, extra = divmod(transfers, streams)

    def worker(worker_id: int, count: int):
        for index in range(count):
            # Deterministic, aperiodic sizes in [4, 8) MB.
            size = (1.0 + ((worker_id * 31 + index * 17) % 97) / 97.0) \
                * 4 * MB
            yield link.transfer(size)

    def main():
        yield all_of(sim, [
            sim.process(worker(i, per_stream + (1 if i < extra else 0)),
                        name=f"stream-{i}")
            for i in range(streams)])

    started = time.perf_counter()
    sim.run_process(main())
    wall = time.perf_counter() - started
    assert link.total_transfers == transfers
    return {
        "streams": streams,
        "transfers": transfers,
        "peak_streams": link.peak_streams,
        "wall_seconds": round(wall, 3),
        "events": sim.events_processed,
        "events_per_sec": int(sim.events_processed / wall),
        "simulated_seconds": round(sim.now, 3),
        "bytes_moved_gb": round(link.bytes_moved / 1e9, 3),
    }


def run_sweep(pipelines=("MP3", "FLAC")) -> dict:
    """Strategy sweep through the serial engine (profiling hot path)."""
    from repro.backends import SimulatedBackend
    from repro.exec import SweepEngine
    from repro.pipelines import get_pipeline
    engine = SweepEngine(SimulatedBackend())
    started = time.perf_counter()
    result = engine.sweep([get_pipeline(name) for name in pipelines])
    wall = time.perf_counter() - started
    throughputs = {
        f"{profile.strategy.pipeline_name}/{profile.strategy.split_name}":
            round(profile.throughput, 3)
        for profile in result.all_profiles()
    }
    return {
        "pipelines": list(pipelines),
        "strategies": result.job_count,
        "wall_seconds": round(wall, 3),
        "throughput_sps": throughputs,
    }


def run_sweep_full() -> dict:
    """The whole registry (slow; opt-in via ``--full``)."""
    from repro.pipelines import all_pipelines
    return run_sweep(tuple(spec.name for spec in all_pipelines()))
