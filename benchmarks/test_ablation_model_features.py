"""Ablation: which model mechanisms carry which paper findings.

DESIGN.md commits to ablation benches for the design choices.  Each
ablation disables one mechanism of the simulator and shows a paper
finding collapsing, demonstrating the mechanism is load-bearing rather
than decorative:

* dispatch serialization -> the NILM-aggregated plateau (Sec. 4.4);
* metadata-service slots -> the fio random-access wall (Table 3);
* the GIL -> external steps' refusal to scale (Fig. 12/13);
* the page-cache capacity -> the fits-in-RAM caching cliff (Fig. 8).
"""

from conftest import emit, run_once

from repro import calibration as cal
from repro.backends import Environment, RunConfig, SimulatedBackend
from repro.core.frame import Frame
from repro.pipelines import get_pipeline
from repro.sim.storage import HDD_CEPH
from repro.sim.fio import FioWorkload, run_workload
from repro.units import GB, MB, US


def test_ablation_dispatch_serialization(benchmark, backend):
    """Without the serialized hand-off, NILM aggregated would scale far
    past the paper's ~9 k SPS plateau."""
    plan = get_pipeline("NILM").split_at("aggregated")

    def experiment():
        with_dispatch = backend.run(plan, RunConfig()).throughput
        original = cal.DISPATCH_COST
        try:
            cal.DISPATCH_COST = 1 * US  # ablate: near-free dispatch
            without = SimulatedBackend().run(plan, RunConfig()).throughput
        finally:
            cal.DISPATCH_COST = original
        return Frame.from_records([
            {"variant": "full model", "nilm_aggregated_sps":
                round(with_dispatch)},
            {"variant": "dispatch ablated", "nilm_aggregated_sps":
                round(without)},
        ])

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Ablation: dispatch serialization", frame)
    values = frame["nilm_aggregated_sps"]
    assert values[1] > 3 * values[0]  # plateau gone without the lock


def test_ablation_metadata_slots(benchmark):
    """With unlimited metadata slots, 8-thread random fio overshoots the
    paper's 40.4 MB/s wall."""

    def experiment():
        workload = FioWorkload(threads=16, files_per_thread=1000,
                               file_bytes=0.2 * MB)
        constrained = run_workload(HDD_CEPH, workload)
        unconstrained = run_workload(
            HDD_CEPH.with_overrides(metadata_slots=512), workload)
        return Frame.from_records([
            {"variant": "6 metadata slots (fitted)",
             "random_mb_s": round(constrained.bandwidth / MB, 1)},
            {"variant": "512 slots (ablated)",
             "random_mb_s": round(unconstrained.bandwidth / MB, 1)},
        ])

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Ablation: metadata service slots", frame)
    values = frame["random_mb_s"]
    assert values[1] > 1.5 * values[0]


def test_ablation_gil(benchmark, backend):
    """Marking NILM's steps native (ablating the GIL) would let the
    decoded strategy scale -- contradicting Fig. 12i."""
    pipeline = get_pipeline("NILM")

    def experiment():
        plan = pipeline.split_at("decoded")
        gil_bound = backend.run(plan, RunConfig(threads=8)).throughput
        # Rebuild the pipeline with native (GIL-free) step costs.
        from repro.pipelines.base import PipelineSpec, StepSpec
        native_steps = [
            StepSpec(step.name, step.cpu_seconds, impl="native",
                     deterministic=step.deterministic, fn=step.fn)
            for step in pipeline.steps
        ]
        ablated = PipelineSpec(pipeline.name, pipeline.representations,
                               native_steps, pipeline.sample_count)
        native = backend.run(ablated.split_at("decoded"),
                             RunConfig(threads=8)).throughput
        return Frame.from_records([
            {"variant": "external steps (GIL)",
             "nilm_decoded_sps": round(gil_bound)},
            {"variant": "native steps (ablated)",
             "nilm_decoded_sps": round(native)},
        ])

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Ablation: the GIL on external steps", frame)
    values = frame["nilm_decoded_sps"]
    assert values[1] > 3 * values[0]


def test_ablation_page_cache_capacity(benchmark):
    """With RAM grown to 2 TB, even CV's 1.39 TB pixel-centered
    representation caches -- erasing the paper's Fig. 8 cliff."""

    def experiment():
        plan = get_pipeline("CV").split_at("pixel-centered")
        config = RunConfig(epochs=2, cache_mode="system")
        normal = SimulatedBackend().run(plan, config)
        huge_ram = SimulatedBackend(
            Environment(ram_bytes=2_000 * GB)).run(plan, config)
        return Frame.from_records([
            {"variant": "80 GB RAM (paper)", "epoch1_gain": round(
                normal.epochs[1].throughput
                / normal.epochs[0].throughput, 2)},
            {"variant": "2 TB RAM (ablated)", "epoch1_gain": round(
                huge_ram.epochs[1].throughput
                / huge_ram.epochs[0].throughput, 2)},
        ])

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Ablation: page-cache capacity", frame)
    gains = frame["epoch1_gain"]
    assert gains[0] < 1.1   # paper behaviour: no caching benefit
    assert gains[1] > 1.5   # with enough RAM the benefit appears
