"""Figure 9: online processing time per caching level vs sample size.

Paper: at 20.5 MB samples, no-cache/sys-cache/app-cache take
15.0/4.8/0.1 s for 15 GB; at 0.01 MB all three converge (173.5/167.3/
138.3 s) because per-sample costs dominate.  App-cache removes
deserialization: 94-98% of sys-cache time at large samples.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines.synthetic import (build_read_sweep_pipeline,
                                       sweep_sample_sizes)

MODES = ("none", "system", "application")


def test_fig9(benchmark, backend):
    def experiment():
        rows = []
        for sample_mb in sweep_sample_sizes():
            pipeline = build_read_sweep_pipeline(sample_mb, "float32")
            plan = pipeline.split_points()[0]
            record = {"sample_mb": sample_mb}
            for mode in MODES:
                result = backend.run(plan, RunConfig(
                    epochs=2, cache_mode=mode))
                # The paper reports the *cached* epoch for sys/app modes.
                epoch = result.epochs[1] if mode != "none" else \
                    result.epochs[0]
                record[f"{mode}_seconds"] = round(epoch.duration, 2)
            rows.append(record)
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 9: caching levels vs sample size", frame)

    rows = {row["sample_mb"]: row for row in frame.rows()}
    for sample_mb, row in rows.items():
        # Cache hierarchy: app <= sys <= none (10% slack at dispatch-bound
        # sizes, where faster reads only deepen the hand-off convoy).
        assert row["application_seconds"] <= row["system_seconds"] * 1.10
        assert row["system_seconds"] <= row["none_seconds"] * 1.10
    # Large samples: app-cache removes nearly all (deserialization) time.
    big = rows[20.5]
    assert big["application_seconds"] < 0.25 * big["system_seconds"]
    assert big["system_seconds"] < 0.6 * big["none_seconds"]
    # Tiny samples: all three converge within ~35% (per-sample costs).
    small = rows[0.01]
    assert small["application_seconds"] > 0.65 * small["none_seconds"]
