"""Table 4: throughput and network reads for concatenation strategies.

Paper rows (SPS unprocessed -> concatenated, reads MB/s):
    CV        107 -> 962   (12 -> 111)
    CV (SSD)  588 -> 944   (68 -> 108)
    CV2-JPG    88 -> 288   (46 -> 110)
    CV2-PNG    15 ->  21  (270 -> 390)
    NLP         6 ->   6  (0.21 -> 0.26)
"""

from conftest import emit, run_once

from repro.backends import Environment, RunConfig, SimulatedBackend
from repro.core.frame import Frame
from repro.pipelines import get_pipeline
from repro.sim.storage import SSD_CEPH
from repro.units import MB

PAPER = [
    ("CV", "ceph-hdd", 107, 962),
    ("CV (SSD)", "ceph-ssd", 588, 944),
    ("CV2-JPG", "ceph-hdd", 88, 288),
    ("CV2-PNG", "ceph-hdd", 15, 21),
    ("NLP", "ceph-hdd", 6, 6),
]


def test_table4(benchmark, backend):
    ssd_backend = SimulatedBackend(Environment(storage=SSD_CEPH))

    def experiment():
        rows = []
        for label, storage, paper_unproc, paper_concat in PAPER:
            pipeline = get_pipeline(label.split(" ")[0])
            runner = ssd_backend if storage == "ceph-ssd" else backend
            unprocessed = runner.run(pipeline.split_at("unprocessed"),
                                     RunConfig())
            concatenated = runner.run(pipeline.split_at("concatenated"),
                                      RunConfig())
            rows.append({
                "Pipeline": label,
                "unproc SPS (paper)": paper_unproc,
                "unproc SPS": round(unprocessed.throughput, 1),
                "concat SPS (paper)": paper_concat,
                "concat SPS": round(concatenated.throughput, 1),
                "unproc reads MB/s": round(
                    unprocessed.epochs[0].avg_read_bw / MB, 2),
                "concat reads MB/s": round(
                    concatenated.epochs[0].avg_read_bw / MB, 2),
            })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Table 4: concatenation effect", frame)

    rows = {row["Pipeline"]: row for row in frame.rows()}
    # CV-family pipelines gain from concatenation (Sec. 4.1 obs 1):
    # strongly where random access dominated (CV 9x, CV2-JPG 3.3x),
    # marginally for CV2-PNG whose giant samples stream either way.
    for label in ("CV", "CV2-JPG"):
        gain = rows[label]["concat SPS"] / rows[label]["unproc SPS"]
        assert 1.2 < gain < 13.0
    png_gain = rows["CV2-PNG"]["concat SPS"] / rows["CV2-PNG"]["unproc SPS"]
    assert png_gain >= 0.95
    # NLP gains nothing: the CPU bottleneck binds.
    nlp_gain = rows["NLP"]["concat SPS"] / rows["NLP"]["unproc SPS"]
    assert 0.9 < nlp_gain < 1.15
    # SSD lifts unprocessed CV ~6x but not concatenated.
    assert rows["CV (SSD)"]["unproc SPS"] > 3 * rows["CV"]["unproc SPS"]
    assert (abs(rows["CV (SSD)"]["concat SPS"] - rows["CV"]["concat SPS"])
            < 0.15 * rows["CV"]["concat SPS"])
