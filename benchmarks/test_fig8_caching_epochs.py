"""Figure 8: effects of system-level caching on T4 across two epochs.

Paper: caching helps only when the representation fits in the 80 GB RAM
and no CPU bottleneck follows; CV (>146 GB) sees nothing, CV2-JPG's
resized/pixel-centered gain 1.6x/3.2x, NLP's CPU-bound strategies gain
nothing, NILM's tiny samples gain ~1.1x.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines import get_pipeline

PIPELINES = ("CV", "CV2-JPG", "CV2-PNG", "NLP", "NILM", "MP3", "FLAC")


def test_fig8(benchmark, backend):
    def experiment():
        rows = []
        for name in PIPELINES:
            pipeline = get_pipeline(name)
            for plan in pipeline.split_points():
                result = backend.run(plan, RunConfig(
                    epochs=2, cache_mode="system"))
                rows.append({
                    "pipeline": name,
                    "strategy": plan.strategy_name,
                    "epoch0_sps": round(result.epochs[0].throughput, 1),
                    "epoch1_sps": round(result.epochs[1].throughput, 1),
                    "gain": round(result.epochs[1].throughput
                                  / result.epochs[0].throughput, 2),
                    "storage_gb": round(result.storage_bytes / 1e9, 1),
                })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 8: caching across epochs", frame)

    gains = {(row["pipeline"], row["strategy"]): row["gain"]
             for row in frame.rows()}
    # Obs 1: representations larger than RAM never gain.
    for row in frame.rows():
        if row["storage_gb"] > 80:
            assert row["gain"] < 1.1, row
    # CV entirely uncached (every strategy >146 GB or CPU-bound).
    for strategy in ("unprocessed", "concatenated", "decoded", "resized",
                     "pixel-centered"):
        assert gains[("CV", strategy)] < 1.15
    # Obs 2: caching does not remove CPU bottlenecks (NLP early, NILM).
    assert gains[("NLP", "concatenated")] < 1.1
    assert gains[("NILM", "decoded")] < 1.1
    # Fitting, compute-light strategies gain substantially.
    assert gains[("CV2-JPG", "pixel-centered")] > 2.0
    assert gains[("CV2-PNG", "resized")] > 1.5
    assert gains[("FLAC", "spectrogram-encoded")] > 2.0
