"""Table 5: caching-level speedups of each pipeline's last strategy.

Paper: system-level / application-level speedups over no caching:
    CV2-JPG 3.3x / 15.2x, CV2-PNG 3.5x / 14.5x, FLAC 4.2x / 8.0x,
    MP3 1.6x / 2.2x, NILM 1.1x / 1.4x
with the speedup declining as per-sample size shrinks; CV and NLP's
last strategies fail to run app-cached (dataset exceeds RAM).
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines import get_pipeline

PAPER = {
    "CV2-JPG": (3.3, 15.2, 1.18),
    "CV2-PNG": (3.5, 14.5, 1.18),
    "FLAC": (4.2, 8.0, 0.41),
    "MP3": (1.6, 2.2, 0.08),
    "NILM": (1.1, 1.4, 0.01),
}


def _last_plan(name):
    pipeline = get_pipeline(name)
    return pipeline.split_points()[-1]


def test_table5(benchmark, backend):
    def experiment():
        rows = []
        for name, (paper_sys, paper_app, sample_mb) in PAPER.items():
            plan = _last_plan(name)
            base = backend.run(plan, RunConfig(epochs=2, cache_mode="none"))
            sys_cached = backend.run(plan, RunConfig(epochs=2,
                                                     cache_mode="system"))
            app_cached = backend.run(
                plan, RunConfig(epochs=2, cache_mode="application"))
            cold = base.epochs[1].throughput
            rows.append({
                "Pipeline": name,
                "System-level (paper)": paper_sys,
                "System-level": round(
                    sys_cached.epochs[1].throughput / cold, 1),
                "Application-level (paper)": paper_app,
                "Application-level": round(
                    app_cached.epochs[1].throughput / cold, 1),
                "Sample Size MB": sample_mb,
            })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Table 5: caching speedups of last strategies", frame)

    rows = {row["Pipeline"]: row for row in frame.rows()}
    for name, row in rows.items():
        # App-level always beats system-level (Sec. 4.2 obs. 4).
        assert row["Application-level"] >= row["System-level"]
    # Speedups decline with sample size (the paper's correlation).
    ordered = sorted(rows.values(), key=lambda r: -r["Sample Size MB"])
    app_gains = [row["Application-level"] for row in ordered]
    assert app_gains[0] > app_gains[-1]
    # NILM barely gains; CV2-JPG gains an order of magnitude.
    assert rows["NILM"]["Application-level"] < 2.5
    assert rows["CV2-JPG"]["Application-level"] > 8.0

    # CV/NLP last strategies fail with app caching (dataset > RAM).
    for name in ("CV", "NLP"):
        result = backend.run(_last_plan(name),
                             RunConfig(epochs=2,
                                       cache_mode="application"))
        assert result.app_cache_failed
