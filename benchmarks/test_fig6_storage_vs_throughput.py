"""Figure 6: storage consumption vs T4 throughput, all seven pipelines.

The paper's central figure: for each pipeline, every strategy's storage
consumption (bars) and throughput (dotted line).  This benchmark
regenerates all 29 cells and checks each against the paper's value.
"""

from conftest import emit, run_once

from repro.backends import RunConfig
from repro.core.frame import Frame
from repro.pipelines import get_pipeline

#: Paper Fig. 6 throughputs (SPS) and storage (GB).
PAPER = {
    "CV": {"unprocessed": (107, 146.9), "concatenated": (962, 147.0),
           "decoded": (746, 842.5), "resized": (1789, 347.3),
           "pixel-centered": (576, 1390.0)},
    "CV2-JPG": {"unprocessed": (88, 2.5), "concatenated": (288, 2.6),
                "decoded": (64, 65.7), "resized": (1571, 1.4),
                "pixel-centered": (643, 5.8)},
    "CV2-PNG": {"unprocessed": (15, 85.2), "concatenated": (21, 87.2),
                "decoded": (73, 65.7), "resized": (1786, 1.4),
                "pixel-centered": (631, 5.8)},
    "NLP": {"unprocessed": (6, 7.7), "concatenated": (6, 7.7),
            "decoded": (251, 0.594), "bpe-encoded": (1726, 0.647),
            "embedded": (131, 490.7)},
    "NILM": {"unprocessed": (42, 39.6), "decoded": (55, 262.5),
             "aggregated": (9053, 3.1)},
    "MP3": {"unprocessed": (37, 0.25), "decoded": (205, 3.0),
            "spectrogram-encoded": (5220, 0.995)},
    "FLAC": {"unprocessed": (15, 6.6), "decoded": (47, 11.6),
             "spectrogram-encoded": (1436, 11.6)},
}


def test_fig6(benchmark, backend):
    def experiment():
        rows = []
        for name, strategies in PAPER.items():
            pipeline = get_pipeline(name)
            for plan in pipeline.split_points():
                paper_sps, paper_gb = strategies[plan.strategy_name]
                result = backend.run(plan, RunConfig())
                rows.append({
                    "pipeline": name,
                    "strategy": plan.strategy_name,
                    "SPS (paper)": paper_sps,
                    "SPS": round(result.throughput, 1),
                    "GB (paper)": paper_gb,
                    "GB": round(result.storage_bytes / 1e9, 2),
                })
        return Frame.from_records(rows)

    frame = run_once(benchmark, experiment)
    emit(benchmark, "Figure 6: storage vs throughput (all pipelines)",
         frame)

    worst = 1.0
    for row in frame.rows():
        ratio = row["SPS"] / row["SPS (paper)"]
        worst = max(worst, ratio, 1.0 / ratio)
        # Every throughput within 1.6x of the paper...
        assert 0.6 < ratio < 1.67, row
        # ...and storage consumption essentially exact.
        assert abs(row["GB"] - row["GB (paper)"]) <= max(
            0.02 * row["GB (paper)"], 0.1), row
    print(f"worst throughput deviation: {worst:.2f}x across "
          f"{len(frame)} cells")

    # Per-pipeline winners match the paper.
    for name, strategies in PAPER.items():
        paper_best = max(strategies, key=lambda s: strategies[s][0])
        rows = [r for r in frame.rows() if r["pipeline"] == name]
        measured_best = max(rows, key=lambda r: r["SPS"])["strategy"]
        assert measured_best == paper_best, name
